//===- GenKill.h - Word-parallel bitset gen/kill problems -------*- C++ -*-===//
///
/// \file
/// The workhorse dataflow domain: per-block gen/kill sets over a dense
/// BitVector, solved word-parallel (64 registers per machine operation)
/// by the generic solver in Dataflow.h. The transfer function is the
/// classic
///
///   flow(V) = Gen[B] | (V & ~Kill[B])
///
/// with set-union join — a may-analysis in either direction. Liveness
/// (backward: Gen = upward-exposed uses, Kill = defs) and maybe-uninit
/// (forward: Gen = empty, Kill = defs, boundary = registers not entry-
/// live) are both instances; this domain is also the working prototype
/// for the ROADMAP item 3 bitset hot-path rewrite.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_LINT_DATAFLOW_GENKILL_H
#define NPRAL_LINT_DATAFLOW_GENKILL_H

#include "lint/dataflow/Dataflow.h"
#include "support/BitVector.h"

#include <vector>

namespace npral {

/// A union-join gen/kill problem over BitVector facts.
struct GenKillProblem {
  using Value = BitVector;

  DataflowDirection Dir = DataflowDirection::Forward;
  int NumBits = 0;
  /// Per-block facts generated (flow-side) and killed, indexed by block ID.
  std::vector<BitVector> Gen;
  std::vector<BitVector> Kill;
  /// Facts holding at the CFG boundary: the entry block's join side for a
  /// forward problem, every exit block's join side for a backward one.
  BitVector BoundaryValue;

  DataflowDirection direction() const { return Dir; }
  Value boundary(const Program &) const { return BoundaryValue; }
  Value bottom(const Program &) const { return BitVector(NumBits); }
  bool join(Value &Into, const Value &From) const {
    return Into.unionWith(From);
  }
  void transfer(const Program &, int Block, Value &V) const {
    V.subtract(Kill[static_cast<size_t>(Block)]);
    V.unionWith(Gen[static_cast<size_t>(Block)]);
  }
};

/// Backward liveness over \p P: Gen = upward-exposed uses, Kill = defs,
/// empty boundary. solveDataflow yields In = block live-in, Out = block
/// live-out — the facts LivenessInfo is built from.
GenKillProblem makeLivenessProblem(const Program &P);

/// Forward maybe-uninitialized over \p P: a register is maybe-undef at a
/// point when some path from entry reaches it without a def. Kill = defs,
/// Gen = empty, boundary = all registers minus the declared entry-live
/// ones. In = maybe-undef at block entry.
GenKillProblem makeMaybeUninitProblem(const Program &P);

} // namespace npral

#endif // NPRAL_LINT_DATAFLOW_GENKILL_H
