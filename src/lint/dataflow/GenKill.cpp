//===- GenKill.cpp - Gen/kill problem builders ----------------------------===//

#include "lint/dataflow/GenKill.h"

#include <array>

using namespace npral;

GenKillProblem npral::makeLivenessProblem(const Program &P) {
  GenKillProblem Prob;
  Prob.Dir = DataflowDirection::Backward;
  Prob.NumBits = P.NumRegs;
  const size_t NumBlocks = static_cast<size_t>(P.getNumBlocks());
  Prob.Gen.assign(NumBlocks, BitVector(P.NumRegs));
  Prob.Kill.assign(NumBlocks, BitVector(P.NumRegs));
  Prob.BoundaryValue = BitVector(P.NumRegs);
  for (size_t B = 0; B < NumBlocks; ++B) {
    for (const Instruction &I : P.block(static_cast<int>(B)).Instrs) {
      std::array<Reg, 2> Uses;
      int N = I.getUses(Uses);
      for (int U = 0; U < N; ++U) {
        Reg R = Uses[static_cast<size_t>(U)];
        // Upward-exposed: used before any def in this block.
        if (!Prob.Kill[B].test(R))
          Prob.Gen[B].set(R);
      }
      if (I.Def != NoReg)
        Prob.Kill[B].set(I.Def);
    }
  }
  return Prob;
}

GenKillProblem npral::makeMaybeUninitProblem(const Program &P) {
  GenKillProblem Prob;
  Prob.Dir = DataflowDirection::Forward;
  Prob.NumBits = P.NumRegs;
  const size_t NumBlocks = static_cast<size_t>(P.getNumBlocks());
  Prob.Gen.assign(NumBlocks, BitVector(P.NumRegs));
  Prob.Kill.assign(NumBlocks, BitVector(P.NumRegs));
  for (size_t B = 0; B < NumBlocks; ++B)
    for (const Instruction &I : P.block(static_cast<int>(B)).Instrs)
      if (I.Def != NoReg)
        Prob.Kill[B].set(I.Def);
  Prob.BoundaryValue = BitVector(P.NumRegs);
  for (Reg R = 0; R < P.NumRegs; ++R)
    Prob.BoundaryValue.set(R);
  for (Reg R : P.EntryLiveRegs)
    Prob.BoundaryValue.reset(R);
  return Prob;
}
