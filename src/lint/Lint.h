//===- Lint.h - npral-lint pass registry and driver -------------*- C++ -*-===//
///
/// \file
/// The static-analysis subsystem: a registry of checkers that run over a
/// MultiThreadProgram — virtual (pre-allocation) or physical
/// (post-allocation) — and accumulate structured diagnostics in a
/// DiagnosticEngine instead of stopping at the first finding.
///
/// Checkers share the per-thread analyses cached in the LintContext
/// (structural verification, liveness, NSR decomposition), so adding a
/// checker costs only its own traversal. The registry drives both the
/// `npralc lint` subcommand and the runAllCheckers library entry point
/// used by tests and the bench harness.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_LINT_LINT_H
#define NPRAL_LINT_LINT_H

#include "analysis/Liveness.h"
#include "analysis/NSR.h"
#include "ir/Program.h"
#include "support/DiagnosticEngine.h"

#include <string>
#include <string_view>
#include <vector>

namespace npral {

/// What to run and how chatty to be.
struct LintOptions {
  /// Run only these checkers (registry names). Empty = every checker
  /// applicable to the program kind.
  std::vector<std::string> OnlyChecks;
  /// Include advisory checkers (notes such as the over-private splitting
  /// hints). An advisory checker named in OnlyChecks runs regardless.
  bool IncludeAdvice = true;
};

/// Which program kind a checker applies to.
enum class CheckerMode {
  Both,         ///< virtual and physical programs
  VirtualOnly,  ///< pre-allocation programs only
  PhysicalOnly, ///< post-allocation programs only
};

class LintContext;

using CheckerFn = void (*)(LintContext &);

/// One registered checker.
struct CheckerInfo {
  std::string_view Name;        ///< kebab-case registry name
  std::string_view Description; ///< one-line summary for --help and docs
  CheckerMode Mode = CheckerMode::Both;
  /// Advisory checkers only emit notes and are skipped when
  /// LintOptions::IncludeAdvice is off.
  bool Advisory = false;
  CheckerFn Run = nullptr;
};

/// All registered checkers, in execution order.
const std::vector<CheckerInfo> &getCheckerRegistry();

/// Registry lookup by name; nullptr when unknown.
const CheckerInfo *findChecker(std::string_view Name);

/// Per-thread analyses computed once and shared by every checker. The
/// dataflow fields are only valid when HasDataflow is true (the thread
/// passed structural verification).
struct ThreadLintState {
  Status Structure;
  bool HasDataflow = false;
  LivenessInfo Liveness;
  NSRInfo NSRs;
};

/// The program under analysis plus cached analyses and the sink for
/// diagnostics.
class LintContext {
public:
  LintContext(const MultiThreadProgram &MTP, DiagnosticEngine &Engine);

  const MultiThreadProgram &getProgram() const { return MTP; }
  DiagnosticEngine &getEngine() { return Engine; }

  int getNumThreads() const { return MTP.getNumThreads(); }
  const Program &thread(int T) const {
    return MTP.Threads[static_cast<size_t>(T)];
  }
  ThreadLintState &state(int T) { return States[static_cast<size_t>(T)]; }

  /// True when every thread is a physical program (and there is at least
  /// one thread).
  bool isPhysical() const { return Physical; }

  /// Report a diagnostic positioned inside thread \p T at (\p Block,
  /// \p Instr); pass -1 for positions that do not apply.
  Diagnostic &emit(Severity Sev, std::string Check, int T, int Block,
                   int Instr, std::string Message);

private:
  const MultiThreadProgram &MTP;
  DiagnosticEngine &Engine;
  std::vector<ThreadLintState> States;
  bool Physical = false;
};

/// Run every applicable registered checker over \p MTP, accumulating into
/// \p Engine. Returns the number of error diagnostics in the engine after
/// the run.
int runAllCheckers(const MultiThreadProgram &MTP, DiagnosticEngine &Engine,
                   const LintOptions &Opts = {});

/// Reinterpret a parsed (virtual) program whose register names are all of
/// the form p<N> as a physical program: register IDs become the named
/// indices, every thread gets the same register file size (max index + 1),
/// and IsPhysical is set. This is how deliberately-bad allocations are
/// crafted as plain .s fixtures for `npralc lint --physical`.
Status mapNamedPhysicalRegisters(MultiThreadProgram &MTP);

} // namespace npral

#endif // NPRAL_LINT_LINT_H
