//===- Socket.h - Unix-domain socket helpers --------------------*- C++ -*-===//
///
/// \file
/// Thin RAII wrappers over AF_UNIX stream sockets for the allocation
/// service (src/serve/). Three pieces:
///
///  * UnixSocket   — an owned fd with exact-length read/write loops that
///                   retry on EINTR and report failures as Status (never
///                   SIGPIPE: writes use MSG_NOSIGNAL).
///  * UnixListener — bind + listen on a filesystem path, with a poll-based
///                   accept that can be interrupted through a wake pipe
///                   (the server's shutdown signal path writes one byte to
///                   the pipe and accept() returns "interrupted").
///  * WakePipe     — a self-pipe whose write end is async-signal-safe to
///                   poke from a signal handler.
///
/// Everything here is Linux/POSIX; the repo's toolchain guarantees it. No
/// other subsystem may talk to the network — the service listens on a
/// local Unix socket only.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_SOCKET_H
#define NPRAL_SUPPORT_SOCKET_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace npral {

/// An owned socket (or pipe) fd. Move-only; closes on destruction.
class UnixSocket {
public:
  UnixSocket() = default;
  explicit UnixSocket(int Fd) : Fd(Fd) {}
  ~UnixSocket() { close(); }

  UnixSocket(UnixSocket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  UnixSocket &operator=(UnixSocket &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }
  UnixSocket(const UnixSocket &) = delete;
  UnixSocket &operator=(const UnixSocket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Connect to the Unix socket at \p Path.
  static ErrorOr<UnixSocket> connectTo(const std::string &Path);

  /// Read exactly \p Len bytes. Fails with IOError on EOF mid-buffer or a
  /// socket error; a clean EOF before the first byte reports
  /// "connection closed" with \p SawEOF (when non-null) set so framed
  /// readers can tell an orderly close from a truncated frame.
  Status readExact(void *Buf, size_t Len, bool *SawEOF = nullptr) const;

  /// Write exactly \p Len bytes (MSG_NOSIGNAL; EPIPE surfaces as IOError).
  Status writeAll(const void *Buf, size_t Len) const;

  /// shutdown(2) the read side: a blocked reader returns EOF, the write
  /// side stays open for in-flight responses.
  void shutdownRead() const;
  /// shutdown(2) both directions.
  void shutdownBoth() const;

  /// Bound every send by \p Ms milliseconds (SO_SNDTIMEO) so one client
  /// that stops reading cannot wedge a server worker forever.
  void setSendTimeoutMs(int Ms) const;

  void close();

private:
  int Fd = -1;
};

/// A self-pipe: poke() is async-signal-safe, readFd() is pollable.
class WakePipe {
public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe &) = delete;
  WakePipe &operator=(const WakePipe &) = delete;

  bool valid() const { return Fds[0] >= 0; }
  int readFd() const { return Fds[0]; }
  /// The raw write end, for signal handlers that must write(2) directly.
  int writeFd() const { return Fds[1]; }
  /// Write one byte to the pipe. Safe from a signal handler.
  void poke() const;
  /// Consume any pending bytes (non-blocking).
  void drain() const;

private:
  int Fds[2] = {-1, -1};
};

/// Listening Unix socket bound to a filesystem path. Unlinks the path on
/// destruction (only the path it bound itself).
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Bind and listen on \p Path. An existing socket file that still
  /// accepts connections is "address in use"; a stale one is unlinked.
  Status listenOn(const std::string &Path, int Backlog = 64);

  bool valid() const { return Sock.valid(); }
  const std::string &path() const { return Path; }

  /// Wait for a connection or a byte on \p WakeFd. Returns the accepted
  /// socket; a wake (or closed listener) fails with Unavailable, a real
  /// socket error with IOError.
  ErrorOr<UnixSocket> accept(int WakeFd) const;

  /// Close the listening socket (accept() starts failing) and remove the
  /// socket file so new connect() attempts fail immediately.
  void close();

private:
  UnixSocket Sock;
  std::string Path;
};

/// Resident-set size of the current process in bytes (Linux
/// /proc/self/status VmRSS); 0 when unavailable. The soak test uses this
/// to assert bounded memory growth across 10^5 requests.
int64_t currentRSSBytes();

} // namespace npral

#endif // NPRAL_SUPPORT_SOCKET_H
