//===- Status.h - Structured recoverable errors -----------------*- C++ -*-===//
//
// Part of NPRAL, a reproduction of Zhuang & Pande, PLDI 2004.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured recoverable-error machinery. Library code never throws and
/// never calls exit(); fallible operations return ErrorOr<T> or Status and
/// callers decide how to surface failures.
///
/// Every failed Status carries a StatusCode so callers can branch on *what
/// kind* of failure occurred — the batch pipeline retries Infeasible items
/// in spill-permitted mode, treats CacheCorrupt as a cache miss, and
/// reports DeadlineExceeded / FaultInjected per item instead of aborting
/// the fleet. The code is classification, not prose: the human-readable
/// message still follows the LLVM error style (lowercase first letter, no
/// trailing period).
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_STATUS_H
#define NPRAL_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace npral {

/// Classification of a failure. Codes describe the *stage contract* that
/// was violated, not the callee that noticed: a malformed `.s` file is a
/// ParseError wherever it surfaces.
enum class StatusCode {
  Ok = 0,
  /// Unclassified failure (the pre-structured-error default).
  Generic,
  /// Textual assembly that does not parse.
  ParseError,
  /// A Program violating the IR structural rules.
  InvalidIR,
  /// A register read before any definition on some path.
  UseOfUndef,
  /// A register budget no allocation can meet (even after degradation).
  Infeasible,
  /// A cached artifact whose integrity check failed.
  CacheCorrupt,
  /// A stage exceeded its deadline and was cancelled by the watchdog.
  DeadlineExceeded,
  /// A deterministic test fault from the FaultInjector.
  FaultInjected,
  /// File or stream I/O failure.
  IOError,
  /// An internal invariant violation surfaced as a recoverable error.
  Internal,
  /// The server is overloaded or draining; the request was rejected before
  /// any work started and is safe to retry (serve admission control).
  Unavailable,
  /// The request was accepted but abandoned before it ran (server drain).
  Cancelled,
};

/// Stable lower-case name of \p Code ("parse-error", "infeasible", ...),
/// used in failed[] reports and metrics keys.
const char *statusCodeName(StatusCode Code);

/// A source location inside a textual assembly file: 1-based line and column.
struct SourceLoc {
  int Line = 0;
  int Column = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const;
};

/// Outcome of a fallible operation that produces no value.
///
/// A Status is either success (default) or failure with a StatusCode, a
/// human-readable message and an optional source location.
class Status {
public:
  Status() = default;

  static Status success() { return Status(); }
  static Status error(std::string Message, SourceLoc Loc = SourceLoc());
  static Status error(StatusCode Code, std::string Message,
                      SourceLoc Loc = SourceLoc());

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Classification of a failed status; Ok on success.
  StatusCode code() const { return Code; }
  /// Stable name of code() — see statusCodeName.
  const char *codeName() const { return statusCodeName(Code); }

  /// Message of a failed status; empty on success.
  const std::string &message() const { return Message; }
  SourceLoc loc() const { return Loc; }

  /// Render "line L, column C: message" (or just the message when the
  /// location is unknown).
  std::string str() const;

private:
  bool Failed = false;
  StatusCode Code = StatusCode::Ok;
  std::string Message;
  SourceLoc Loc;
};

/// Value-or-error wrapper for fallible producers, in the spirit of
/// llvm::ErrorOr but without error_code interop.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  ErrorOr(Status Err) : Err(std::move(Err)) {
    assert(!this->Err.ok() && "ErrorOr constructed from a success status");
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &operator*() {
    assert(ok() && "dereferencing failed ErrorOr");
    return *Value;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing failed ErrorOr");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Status &status() const { return Err; }
  /// Move the contained value out; only valid when ok().
  T take() {
    assert(ok() && "taking value of failed ErrorOr");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Status Err;
};

/// Abort with a message; used for internal invariant violations that must
/// fire even in release builds (analogue of llvm::report_fatal_error).
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace npral

#endif // NPRAL_SUPPORT_STATUS_H
