//===- Arena.h - Flat string arena + interner -------------------*- C++ -*-===//
///
/// \file
/// Per-program string storage for the arena IR: every label and register
/// name is interned once into a flat byte arena and referred to by a dense
/// `int32_t` id from then on. IR nodes carry only ids, so copying a Program
/// is three `memcpy`-shaped vector copies instead of a walk over hundreds
/// of heap strings, and the analysis hot path never touches characters.
///
/// The interner is value-semantic on purpose: each Program owns its arena,
/// so analysis bundles shared read-only across worker threads never race on
/// a common string table (the lesson of the batch pipeline's cache design).
/// All internal state is flat offset-based vectors, which makes the
/// compiler-generated copy/move correct and cheap.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_ARENA_H
#define NPRAL_SUPPORT_ARENA_H

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

namespace npral {

/// Sentinel id for "no string".
constexpr int32_t NoStr = -1;

/// A deduplicating string arena. Ids are dense and assigned in first-intern
/// order, so two runs that intern the same sequence of strings produce the
/// same ids — the property the `--jobs 1` vs `--jobs N` stability tests pin.
class StringInterner {
public:
  /// Intern \p S, returning its id (existing id when already present).
  int32_t intern(std::string_view S) {
    const uint64_t H = hashBytes(S);
    if (!Table.empty()) {
      size_t Mask = Table.size() - 1;
      for (size_t Slot = static_cast<size_t>(H) & Mask;;
           Slot = (Slot + 1) & Mask) {
        int32_t Id = Table[Slot];
        if (Id == NoStr)
          break;
        if (view(Id) == S)
          return Id;
      }
    }
    const int32_t Id = static_cast<int32_t>(Offsets.size());
    Offsets.push_back(static_cast<uint32_t>(Bytes.size()));
    Lengths.push_back(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
    if ((Offsets.size() + 1) * 2 > Table.size())
      rehash();
    else
      insertIntoTable(Id, H);
    return Id;
  }

  /// The interned string for \p Id. The view stays valid until the next
  /// intern() (the arena may grow); do not hold it across mutation.
  std::string_view view(int32_t Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Offsets.size() &&
           "bad string id");
    return {Bytes.data() + Offsets[static_cast<size_t>(Id)],
            Lengths[static_cast<size_t>(Id)]};
  }

  int32_t size() const { return static_cast<int32_t>(Offsets.size()); }

  /// Total interned bytes (arena footprint; used by tests/metrics).
  size_t arenaBytes() const { return Bytes.size(); }

private:
  static uint64_t hashBytes(std::string_view S) {
    uint64_t H = 1469598103934665603ull; // FNV-1a
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    return H;
  }

  void insertIntoTable(int32_t Id, uint64_t H) {
    size_t Mask = Table.size() - 1;
    size_t Slot = static_cast<size_t>(H) & Mask;
    while (Table[Slot] != NoStr)
      Slot = (Slot + 1) & Mask;
    Table[Slot] = Id;
  }

  void rehash() {
    size_t NewSize = Table.empty() ? 16 : Table.size() * 2;
    Table.assign(NewSize, NoStr);
    for (int32_t Id = 0; Id < size(); ++Id)
      insertIntoTable(Id, hashBytes(view(Id)));
  }

  std::vector<char> Bytes;       ///< All string data, concatenated.
  std::vector<uint32_t> Offsets; ///< Id -> first byte in Bytes.
  std::vector<uint32_t> Lengths; ///< Id -> length.
  std::vector<int32_t> Table;    ///< Open-addressing id table (power of 2).
};

} // namespace npral

#endif // NPRAL_SUPPORT_ARENA_H
