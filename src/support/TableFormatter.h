//===- TableFormatter.h - Aligned text tables -------------------*- C++ -*-===//
///
/// \file
/// Renders experiment results as aligned, human-readable text tables and as
/// CSV. Every bench binary uses this so that paper-table reproductions share
/// one output format.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_TABLEFORMATTER_H
#define NPRAL_SUPPORT_TABLEFORMATTER_H

#include <ostream>
#include <string>
#include <vector>

namespace npral {

/// Collects rows of string cells and prints them with per-column alignment.
class TableFormatter {
public:
  explicit TableFormatter(std::vector<std::string> Header);

  /// Start a new row; subsequent cell() calls append to it.
  TableFormatter &row();

  TableFormatter &cell(const std::string &Text);
  TableFormatter &cell(long long Value);
  TableFormatter &cell(unsigned long long Value);
  TableFormatter &cell(long Value) { return cell(static_cast<long long>(Value)); }
  TableFormatter &cell(unsigned long Value) {
    return cell(static_cast<unsigned long long>(Value));
  }
  TableFormatter &cell(int Value) { return cell(static_cast<long long>(Value)); }
  TableFormatter &cell(unsigned Value) {
    return cell(static_cast<unsigned long long>(Value));
  }
  /// Fixed-point rendering with \p Decimals fractional digits.
  TableFormatter &cell(double Value, int Decimals = 2);
  /// Percent rendering: 0.183 -> "18.3%".
  TableFormatter &percentCell(double Fraction, int Decimals = 1);

  /// Render as an aligned table with a rule under the header.
  void print(std::ostream &OS) const;
  /// Render as CSV (no alignment padding).
  void printCsv(std::ostream &OS) const;
  /// Render as a JSON object {"header": [...], "rows": [[...], ...]} with
  /// every cell a string, exactly as it would print. \p Indent prefixes
  /// each line (for embedding in a larger document).
  void printJSON(std::ostream &OS, const std::string &Indent = "") const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace npral

#endif // NPRAL_SUPPORT_TABLEFORMATTER_H
