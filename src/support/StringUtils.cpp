//===- StringUtils.cpp ----------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ostream>

using namespace npral;

std::string_view npral::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> npral::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Parts.push_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::optional<int64_t> npral::parseInteger(std::string_view S) {
  S = trim(S);
  if (S.empty())
    return std::nullopt;

  bool Negative = false;
  if (S.front() == '-' || S.front() == '+') {
    Negative = S.front() == '-';
    S.remove_prefix(1);
    if (S.empty())
      return std::nullopt;
  }

  int Base = 10;
  if (S.size() > 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) {
    Base = 16;
    S.remove_prefix(2);
  }

  int64_t Value = 0;
  for (char C : S) {
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (Base == 16 && C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (Base == 16 && C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return std::nullopt;
    Value = Value * Base + Digit;
  }
  return Negative ? -Value : Value;
}

bool npral::isIdentifier(std::string_view S) {
  if (S.empty())
    return false;
  auto isIdentStart = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '.';
  };
  auto isIdentCont = [&](char C) {
    return isIdentStart(C) || std::isdigit(static_cast<unsigned char>(C));
  };
  if (!isIdentStart(S.front()))
    return false;
  for (char C : S.substr(1))
    if (!isIdentCont(C))
      return false;
  return true;
}

std::string npral::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed));
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}

uint64_t npral::fnv1aHash(std::string_view Data) {
  uint64_t Hash = 1469598103934665603ULL;
  for (char C : Data) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

uint64_t npral::fnv1aCombine(uint64_t Seed, uint64_t Value) {
  for (int Byte = 0; Byte < 8; ++Byte) {
    Seed ^= (Value >> (8 * Byte)) & 0xFF;
    Seed *= 1099511628211ULL;
  }
  return Seed;
}

void npral::writeJSONString(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xF] << Hex[C & 0xF];
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}
