//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
///
/// \file
/// A fixed-size thread pool for the batch pipeline: N workers drain a FIFO
/// task queue; wait() blocks until every submitted task has finished. Tasks
/// must not throw (the library reports failures through result structs, not
/// exceptions) and must synchronise their own access to shared state — the
/// pool only guarantees that submit() happens-before the task body and the
/// task body happens-before wait() returning.
///
/// The pool is deliberately minimal: no futures, no priorities, no work
/// stealing. Batch jobs are coarse (a whole program's analysis+allocation
/// each), so a mutex-guarded deque is nowhere near contention.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_THREADPOOL_H
#define NPRAL_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace npral {

class ThreadPool {
public:
  /// Spawn \p NumWorkers workers (clamped to at least 1).
  explicit ThreadPool(int NumWorkers) {
    const int N = std::max(1, NumWorkers);
    Workers.reserve(static_cast<size_t>(N));
    for (int I = 0; I < N; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stopping = true;
    }
    WorkAvailable.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  int getNumWorkers() const { return static_cast<int>(Workers.size()); }

  /// Enqueue \p Task; it runs on some worker, in FIFO order.
  void submit(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.push_back(std::move(Task));
      ++Pending;
    }
    WorkAvailable.notify_one();
  }

  /// Block until every task submitted so far has completed.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
  }

  /// std::thread::hardware_concurrency with the zero-means-unknown case
  /// clamped to 1.
  static int hardwareConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : static_cast<int>(N);
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkAvailable.wait(Lock,
                           [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained.
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      Task();
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (--Pending == 0)
          AllDone.notify_all();
      }
    }
  }

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  /// Tasks submitted but not yet finished (queued + running).
  int Pending = 0;
  bool Stopping = false;
};

/// Run Fn(0) .. Fn(N-1) across \p Pool and block until all are done. The
/// iterations must be independent; each writes only its own outputs.
inline void parallelFor(ThreadPool &Pool, int N,
                        const std::function<void(int)> &Fn) {
  for (int I = 0; I < N; ++I)
    Pool.submit([&Fn, I] { Fn(I); });
  Pool.wait();
}

} // namespace npral

#endif // NPRAL_SUPPORT_THREADPOOL_H
