//===- Random.cpp ---------------------------------------------------------===//

#include "support/Random.h"

using namespace npral;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

void Rng::reseed(uint64_t Seed) {
  uint64_t X = Seed;
  State0 = splitmix64(X);
  State1 = splitmix64(X);
  if (State0 == 0 && State1 == 0)
    State1 = 1;
}

uint64_t Rng::next() {
  uint64_t S1 = State0;
  const uint64_t S0 = State1;
  const uint64_t Result = S0 + S1;
  State0 = S0;
  S1 ^= S1 << 23;
  State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "nextBelow requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(
                  nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

bool Rng::nextChance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && "zero denominator");
  return nextBelow(Den) < Num;
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}
