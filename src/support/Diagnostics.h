//===- Diagnostics.h - Error reporting for NPRAL ----------------*- C++ -*-===//
//
// Part of NPRAL, a reproduction of Zhuang & Pande, PLDI 2004.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Historical home of the recoverable-error machinery. The definitions
/// (SourceLoc, Status, ErrorOr, reportFatalError) now live in
/// support/Status.h, which adds the structured StatusCode layer; this
/// header remains so existing includes keep compiling.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_DIAGNOSTICS_H
#define NPRAL_SUPPORT_DIAGNOSTICS_H

#include "support/Status.h"

#endif // NPRAL_SUPPORT_DIAGNOSTICS_H
