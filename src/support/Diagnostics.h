//===- Diagnostics.h - Error reporting for NPRAL ----------------*- C++ -*-===//
//
// Part of NPRAL, a reproduction of Zhuang & Pande, PLDI 2004.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error machinery. Library code never throws and
/// never calls exit(); fallible operations return ErrorOr<T> or Status and
/// callers decide how to surface failures.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_DIAGNOSTICS_H
#define NPRAL_SUPPORT_DIAGNOSTICS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace npral {

/// A source location inside a textual assembly file: 1-based line and column.
struct SourceLoc {
  int Line = 0;
  int Column = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const;
};

/// Outcome of a fallible operation that produces no value.
///
/// A Status is either success (default) or failure with a human-readable
/// message and an optional source location. Messages follow the LLVM error
/// style: lowercase first letter, no trailing period.
class Status {
public:
  Status() = default;

  static Status success() { return Status(); }
  static Status error(std::string Message, SourceLoc Loc = SourceLoc());

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Message of a failed status; empty on success.
  const std::string &message() const { return Message; }
  SourceLoc loc() const { return Loc; }

  /// Render "line L, column C: message" (or just the message when the
  /// location is unknown).
  std::string str() const;

private:
  bool Failed = false;
  std::string Message;
  SourceLoc Loc;
};

/// Value-or-error wrapper for fallible producers, in the spirit of
/// llvm::ErrorOr but without error_code interop.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  ErrorOr(Status Err) : Err(std::move(Err)) {
    assert(!this->Err.ok() && "ErrorOr constructed from a success status");
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &operator*() {
    assert(ok() && "dereferencing failed ErrorOr");
    return *Value;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing failed ErrorOr");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Status &status() const { return Err; }
  /// Move the contained value out; only valid when ok().
  T take() {
    assert(ok() && "taking value of failed ErrorOr");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Status Err;
};

/// Abort with a message; used for internal invariant violations that must
/// fire even in release builds (analogue of llvm::report_fatal_error).
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace npral

#endif // NPRAL_SUPPORT_DIAGNOSTICS_H
