//===- DiagnosticEngine.cpp -----------------------------------------------===//

#include "support/DiagnosticEngine.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>

using namespace npral;

std::string_view npral::getSeverityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

bool npral::parseSeverityName(std::string_view Name, Severity &Sev) {
  if (Name == "note")
    Sev = Severity::Note;
  else if (Name == "warning")
    Sev = Severity::Warning;
  else if (Name == "error")
    Sev = Severity::Error;
  else
    return false;
  return true;
}

Diagnostic &DiagnosticEngine::report(Severity Sev, std::string Check,
                                     std::string Message) {
  Diagnostic D;
  D.Sev = Sev;
  D.Check = std::move(Check);
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
  return Diags.back();
}

int DiagnosticEngine::count(Severity Sev) const {
  int N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Sev)
      ++N;
  return N;
}

const Diagnostic *DiagnosticEngine::firstError() const {
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      return &D;
  return nullptr;
}

void DiagnosticEngine::sortBySeverity() {
  std::stable_sort(Diags.begin(), Diags.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Sev != B.Sev)
                       return static_cast<int>(A.Sev) > static_cast<int>(B.Sev);
                     if (A.Thread != B.Thread)
                       return A.Thread < B.Thread;
                     if (A.Block != B.Block)
                       return A.Block < B.Block;
                     return A.Instr < B.Instr;
                   });
}

void DiagnosticEngine::sortByPosition() {
  std::stable_sort(Diags.begin(), Diags.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Thread != B.Thread)
                       return A.Thread < B.Thread;
                     if (A.Block != B.Block)
                       return A.Block < B.Block;
                     return A.Instr < B.Instr;
                   });
}

std::string npral::formatDiagnostic(const Diagnostic &D) {
  std::string Out;
  if (!D.Thread.empty()) {
    Out += "thread '" + D.Thread + "'";
    if (D.Block >= 0) {
      Out += ", block " + std::to_string(D.Block);
      if (D.Instr >= 0)
        Out += ", instr " + std::to_string(D.Instr);
    }
    Out += ": ";
  } else if (D.Loc.isValid()) {
    Out += D.Loc.str() + ": ";
  }
  Out += std::string(getSeverityName(D.Sev)) + ": " + D.Message + " [" +
         D.Check + "]";
  return Out;
}

void DiagnosticEngine::renderText(std::ostream &OS) const {
  for (const Diagnostic &D : Diags) {
    OS << formatDiagnostic(D) << "\n";
    if (!D.Witness.empty())
      OS << "    witness: " << D.Witness << "\n";
  }
  OS << errorCount() << " error(s), " << warningCount() << " warning(s), "
     << noteCount() << " note(s)\n";
}

// JSON rendering ------------------------------------------------------------

void DiagnosticEngine::renderJSON(std::ostream &OS) const {
  OS << "{\n  \"diagnostics\": [";
  for (size_t I = 0; I < Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    OS << (I ? ",\n    {" : "\n    {");
    OS << "\"severity\": ";
    writeJSONString(OS, getSeverityName(D.Sev));
    OS << ", \"check\": ";
    writeJSONString(OS, D.Check);
    OS << ", \"thread\": ";
    writeJSONString(OS, D.Thread);
    OS << ", \"block\": " << D.Block;
    OS << ", \"instr\": " << D.Instr;
    OS << ", \"line\": " << D.Loc.Line;
    OS << ", \"column\": " << D.Loc.Column;
    OS << ", \"message\": ";
    writeJSONString(OS, D.Message);
    OS << ", \"witness\": ";
    writeJSONString(OS, D.Witness);
    OS << "}";
  }
  OS << (Diags.empty() ? "]" : "\n  ]");
  OS << ",\n  \"errors\": " << errorCount()
     << ",\n  \"warnings\": " << warningCount()
     << ",\n  \"notes\": " << noteCount() << "\n}\n";
}

// JSON parsing --------------------------------------------------------------
//
// A minimal recursive-descent parser for the subset renderJSON emits:
// objects, arrays, strings with the escapes above, and integers. Kept here
// (not a general JSON library) so the round trip is self-contained.

namespace {

class JSONParser {
public:
  explicit JSONParser(std::string_view Text) : Text(Text) {}

  Status parseDiagnostics(std::vector<Diagnostic> &Out) {
    skipSpace();
    if (!consume('{'))
      return fail("expected '{'");
    bool SawDiagnostics = false;
    while (true) {
      skipSpace();
      std::string Key;
      if (Status S = parseString(Key); !S.ok())
        return S;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':'");
      if (Key == "diagnostics") {
        SawDiagnostics = true;
        if (Status S = parseDiagnosticArray(Out); !S.ok())
          return S;
      } else {
        // Count fields: integers we validate syntactically and discard.
        int64_t Ignored;
        if (Status S = parseInt(Ignored); !S.ok())
          return S;
      }
      skipSpace();
      if (consume(','))
        continue;
      if (consume('}'))
        break;
      return fail("expected ',' or '}'");
    }
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    if (!SawDiagnostics)
      return fail("missing 'diagnostics' array");
    return Status::success();
  }

private:
  std::string_view Text;
  size_t Pos = 0;

  Status fail(const std::string &What) const {
    return Status::error("diagnostics JSON: " + What + " at offset " +
                         std::to_string(Pos));
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Status parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Status::success();
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        int Value = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Value *= 16;
          if (H >= '0' && H <= '9')
            Value += H - '0';
          else if (H >= 'a' && H <= 'f')
            Value += H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Value += H - 'A' + 10;
          else
            return fail("bad \\u escape digit");
        }
        if (Value > 0xFF)
          return fail("unsupported \\u escape beyond latin-1");
        Out += static_cast<char>(Value);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status parseInt(int64_t &Out) {
    skipSpace();
    bool Negative = consume('-');
    if (Pos >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("expected integer");
    Out = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      Out = Out * 10 + (Text[Pos++] - '0');
    if (Negative)
      Out = -Out;
    return Status::success();
  }

  Status parseDiagnosticArray(std::vector<Diagnostic> &Out) {
    skipSpace();
    if (!consume('['))
      return fail("expected '['");
    skipSpace();
    if (consume(']'))
      return Status::success();
    while (true) {
      Diagnostic D;
      if (Status S = parseDiagnostic(D); !S.ok())
        return S;
      Out.push_back(std::move(D));
      skipSpace();
      if (consume(','))
        continue;
      if (consume(']'))
        return Status::success();
      return fail("expected ',' or ']'");
    }
  }

  Status parseDiagnostic(Diagnostic &D) {
    skipSpace();
    if (!consume('{'))
      return fail("expected '{'");
    while (true) {
      skipSpace();
      std::string Key;
      if (Status S = parseString(Key); !S.ok())
        return S;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':'");
      skipSpace();
      if (Key == "severity") {
        std::string Name;
        if (Status S = parseString(Name); !S.ok())
          return S;
        if (!parseSeverityName(Name, D.Sev))
          return fail("unknown severity '" + Name + "'");
      } else if (Key == "check" || Key == "thread" || Key == "message" ||
                 Key == "witness") {
        std::string Value;
        if (Status S = parseString(Value); !S.ok())
          return S;
        if (Key == "check")
          D.Check = std::move(Value);
        else if (Key == "thread")
          D.Thread = std::move(Value);
        else if (Key == "message")
          D.Message = std::move(Value);
        else
          D.Witness = std::move(Value);
      } else if (Key == "block" || Key == "instr" || Key == "line" ||
                 Key == "column") {
        int64_t Value;
        if (Status S = parseInt(Value); !S.ok())
          return S;
        if (Key == "block")
          D.Block = static_cast<int>(Value);
        else if (Key == "instr")
          D.Instr = static_cast<int>(Value);
        else if (Key == "line")
          D.Loc.Line = static_cast<int>(Value);
        else
          D.Loc.Column = static_cast<int>(Value);
      } else {
        return fail("unknown diagnostic field '" + Key + "'");
      }
      skipSpace();
      if (consume(','))
        continue;
      if (consume('}'))
        return Status::success();
      return fail("expected ',' or '}'");
    }
  }
};

} // namespace

ErrorOr<std::vector<Diagnostic>>
npral::parseDiagnosticsJSON(std::string_view JSON) {
  std::vector<Diagnostic> Out;
  JSONParser Parser(JSON);
  if (Status S = Parser.parseDiagnostics(Out); !S.ok())
    return S;
  return Out;
}
