//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Status.h"

#include <cstdio>
#include <cstdlib>

using namespace npral;

const char *npral::statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::Generic:
    return "error";
  case StatusCode::ParseError:
    return "parse-error";
  case StatusCode::InvalidIR:
    return "invalid-ir";
  case StatusCode::UseOfUndef:
    return "use-of-undef";
  case StatusCode::Infeasible:
    return "infeasible";
  case StatusCode::CacheCorrupt:
    return "cache-corrupt";
  case StatusCode::DeadlineExceeded:
    return "deadline-exceeded";
  case StatusCode::FaultInjected:
    return "fault-injected";
  case StatusCode::IOError:
    return "io-error";
  case StatusCode::Internal:
    return "internal";
  case StatusCode::Unavailable:
    return "unavailable";
  case StatusCode::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown loc>";
  return "line " + std::to_string(Line) + ", column " + std::to_string(Column);
}

Status Status::error(std::string Message, SourceLoc Loc) {
  return error(StatusCode::Generic, std::move(Message), Loc);
}

Status Status::error(StatusCode Code, std::string Message, SourceLoc Loc) {
  assert(Code != StatusCode::Ok && "error status needs a failure code");
  Status S;
  S.Failed = true;
  S.Code = Code;
  S.Message = std::move(Message);
  S.Loc = Loc;
  return S;
}

std::string Status::str() const {
  if (ok())
    return "success";
  if (!Loc.isValid())
    return Message;
  return Loc.str() + ": " + Message;
}

void npral::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "npral fatal error: %s\n", Message.c_str());
  std::abort();
}
