//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace npral;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown loc>";
  return "line " + std::to_string(Line) + ", column " + std::to_string(Column);
}

Status Status::error(std::string Message, SourceLoc Loc) {
  Status S;
  S.Failed = true;
  S.Message = std::move(Message);
  S.Loc = Loc;
  return S;
}

std::string Status::str() const {
  if (ok())
    return "success";
  if (!Loc.isValid())
    return Message;
  return Loc.str() + ": " + Message;
}

void npral::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "npral fatal error: %s\n", Message.c_str());
  std::abort();
}
