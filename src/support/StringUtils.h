//===- StringUtils.h - Small string helpers ---------------------*- C++ -*-===//
///
/// \file
/// String helpers used by the assembler front end and the printers.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_STRINGUTILS_H
#define NPRAL_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace npral {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Split on a separator character, keeping empty fields.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Parse a decimal or 0x-prefixed integer; std::nullopt on malformed input.
std::optional<int64_t> parseInteger(std::string_view S);

/// True if \p S is a valid identifier: [A-Za-z_.][A-Za-z0-9_.]*.
bool isIdentifier(std::string_view S);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Write \p S to \p OS as a double-quoted JSON string, escaping quotes,
/// backslashes, and control characters (\n, \t, \r, \u00xx). The one JSON
/// string encoding used across the codebase (diagnostics, metrics, traces),
/// so every exporter and round-trip parser agrees byte for byte.
void writeJSONString(std::ostream &OS, std::string_view S);

/// 64-bit FNV-1a over \p Data. The one content hash used across the
/// codebase (analysis cache keys, profile code hashes, memory digests).
uint64_t fnv1aHash(std::string_view Data);

/// Fold \p Value into \p Seed FNV-style, byte by byte. Used to combine
/// independent hashes (e.g. program content + execution profile) into one
/// cache key.
uint64_t fnv1aCombine(uint64_t Seed, uint64_t Value);

} // namespace npral

#endif // NPRAL_SUPPORT_STRINGUTILS_H
