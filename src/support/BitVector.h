//===- BitVector.h - Dense fixed-size bit vector ----------------*- C++ -*-===//
///
/// \file
/// A dense bit vector with set-algebra operations, in the spirit of
/// llvm::BitVector. Liveness sets, interference adjacency rows and NSR
/// membership all use this.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_BITVECTOR_H
#define NPRAL_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace npral {

class BitVector {
public:
  BitVector() = default;
  explicit BitVector(int Size) { resize(Size); }

  int size() const { return NumBits; }

  /// Grow or shrink to \p Size bits, preserving existing bits (new bits are
  /// zero; bits beyond a smaller size are dropped).
  void resize(int Size) {
    assert(Size >= 0 && "negative size");
    NumBits = Size;
    Words.resize(static_cast<size_t>((Size + 63) / 64), 0);
    // Mask stray bits past the new size so count()/any() stay exact.
    if (!Words.empty() && NumBits % 64 != 0)
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  void set(int I) {
    assert(I >= 0 && I < NumBits && "bit out of range");
    Words[static_cast<size_t>(I) / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(int I) {
    assert(I >= 0 && I < NumBits && "bit out of range");
    Words[static_cast<size_t>(I) / 64] &= ~(uint64_t(1) << (I % 64));
  }

  bool test(int I) const {
    assert(I >= 0 && I < NumBits && "bit out of range");
    return (Words[static_cast<size_t>(I) / 64] >> (I % 64)) & 1;
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  int count() const {
    int N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// this |= Other. Returns true if any bit changed.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= Other.
  void intersectWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= Other.Words[I];
  }

  /// this &= ~Other.
  void subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  bool intersects(const BitVector &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Call \p Fn for every set bit, in ascending order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        int Bit = __builtin_ctzll(W);
        Fn(static_cast<int>(WI * 64 + static_cast<size_t>(Bit)));
        W &= W - 1;
      }
    }
  }

  /// Set bits as a vector, ascending.
  std::vector<int> toVector() const {
    std::vector<int> Out;
    forEach([&](int I) { Out.push_back(I); });
    return Out;
  }

private:
  int NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace npral

#endif // NPRAL_SUPPORT_BITVECTOR_H
