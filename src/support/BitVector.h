//===- BitVector.h - Dense fixed-size bit vector ----------------*- C++ -*-===//
///
/// \file
/// A dense bit vector with set-algebra operations, in the spirit of
/// llvm::BitVector. Liveness sets, interference adjacency rows and NSR
/// membership all use this.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_BITVECTOR_H
#define NPRAL_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace npral {

/// A non-owning view of a fixed-size bit set stored in external words —
/// the read side of the flat per-instruction liveness pool. Cheap to pass
/// by value (pointer + size); valid only while the backing storage lives.
class BitSpan {
public:
  BitSpan() = default;
  BitSpan(const uint64_t *Words, int NumBits) : W(Words), NumBits(NumBits) {}

  int size() const { return NumBits; }
  int numWords() const { return (NumBits + 63) / 64; }
  const uint64_t *words() const { return W; }

  bool test(int I) const {
    assert(I >= 0 && I < NumBits && "bit out of range");
    return (W[static_cast<size_t>(I) / 64] >> (I % 64)) & 1;
  }

  bool any() const {
    for (int I = 0, N = numWords(); I < N; ++I)
      if (W[I])
        return true;
    return false;
  }
  bool none() const { return !any(); }

  int count() const {
    int N = 0;
    for (int I = 0, E = numWords(); I < E; ++I)
      N += __builtin_popcountll(W[I]);
    return N;
  }

  /// Call \p Fn for every set bit, in ascending order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (int WI = 0, E = numWords(); WI < E; ++WI) {
      uint64_t Word = W[WI];
      while (Word) {
        int Bit = __builtin_ctzll(Word);
        Fn(WI * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

  bool operator==(BitSpan Other) const {
    if (NumBits != Other.NumBits)
      return false;
    for (int I = 0, N = numWords(); I < N; ++I)
      if (W[I] != Other.W[I])
        return false;
    return true;
  }

private:
  const uint64_t *W = nullptr;
  int NumBits = 0;
};

class BitVector {
public:
  BitVector() = default;
  explicit BitVector(int Size) { resize(Size); }

  /// Materialise a view into an owning vector (used where a consumer keeps
  /// a liveness set beyond the analysis result's lifetime, e.g. CSBs).
  BitVector(BitSpan Span) { assignSpan(Span); }

  void assignSpan(BitSpan Span) {
    NumBits = Span.size();
    Words.assign(Span.words(), Span.words() + Span.numWords());
  }

  /// Read-only view of this vector's bits.
  BitSpan span() const { return {Words.data(), NumBits}; }

  const uint64_t *words() const { return Words.data(); }
  int numWords() const { return static_cast<int>(Words.size()); }

  int size() const { return NumBits; }

  /// Grow or shrink to \p Size bits, preserving existing bits (new bits are
  /// zero; bits beyond a smaller size are dropped).
  void resize(int Size) {
    assert(Size >= 0 && "negative size");
    NumBits = Size;
    Words.resize(static_cast<size_t>((Size + 63) / 64), 0);
    // Mask stray bits past the new size so count()/any() stay exact.
    if (!Words.empty() && NumBits % 64 != 0)
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  void set(int I) {
    assert(I >= 0 && I < NumBits && "bit out of range");
    Words[static_cast<size_t>(I) / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(int I) {
    assert(I >= 0 && I < NumBits && "bit out of range");
    Words[static_cast<size_t>(I) / 64] &= ~(uint64_t(1) << (I % 64));
  }

  bool test(int I) const {
    assert(I >= 0 && I < NumBits && "bit out of range");
    return (Words[static_cast<size_t>(I) / 64] >> (I % 64)) & 1;
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  int count() const {
    int N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// First set bit, or -1 when empty.
  int findFirst() const {
    for (size_t WI = 0; WI < Words.size(); ++WI)
      if (Words[WI])
        return static_cast<int>(WI * 64) + __builtin_ctzll(Words[WI]);
    return -1;
  }

  /// this |= Span (word-parallel; sizes must match).
  void unionWithSpan(BitSpan Span) {
    assert(NumBits == Span.size() && "size mismatch");
    const uint64_t *O = Span.words();
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] |= O[I];
  }

  /// this |= Other. Returns true if any bit changed.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= Other.
  void intersectWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= Other.Words[I];
  }

  /// this &= ~Other.
  void subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  bool intersects(const BitVector &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Call \p Fn for every set bit, in ascending order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        int Bit = __builtin_ctzll(W);
        Fn(static_cast<int>(WI * 64 + static_cast<size_t>(Bit)));
        W &= W - 1;
      }
    }
  }

  /// Set bits as a vector, ascending.
  std::vector<int> toVector() const {
    std::vector<int> Out;
    forEach([&](int I) { Out.push_back(I); });
    return Out;
  }

private:
  int NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace npral

#endif // NPRAL_SUPPORT_BITVECTOR_H
