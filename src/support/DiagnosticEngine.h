//===- DiagnosticEngine.h - Batched structured diagnostics ------*- C++ -*-===//
///
/// \file
/// Accumulating diagnostics for the lint subsystem (and any other client
/// that wants to report *all* problems instead of the first one). A
/// Diagnostic is a structured record — severity, producing check, thread,
/// IR position, message, witness — and the DiagnosticEngine collects many
/// of them and renders the batch as human-readable text or as JSON that
/// parseDiagnosticsJSON round-trips exactly.
///
/// This sits below the IR layer on purpose: positions are plain integers
/// (thread/block/instruction indices), so support code stays dependency
/// free and tools can attach whatever naming they have.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_DIAGNOSTICENGINE_H
#define NPRAL_SUPPORT_DIAGNOSTICENGINE_H

#include "support/Diagnostics.h"

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace npral {

/// How bad a diagnostic is. Errors make a lint run fail; warnings flag
/// likely bugs that do not break the safety invariant; notes are advisory
/// (e.g. splitting opportunities).
enum class Severity { Note, Warning, Error };

/// Stable lowercase name ("note", "warning", "error").
std::string_view getSeverityName(Severity Sev);

/// Reverse of getSeverityName. Returns false on unknown names.
bool parseSeverityName(std::string_view Name, Severity &Sev);

/// One structured finding.
struct Diagnostic {
  Severity Sev = Severity::Warning;
  /// Registry name of the producing check (kebab-case, e.g.
  /// "cross-thread-race").
  std::string Check;
  /// Name of the thread the finding is in; empty for whole-program findings.
  std::string Thread;
  /// Basic block ID within the thread; -1 when not applicable.
  int Block = -1;
  /// Instruction index within Block; -1 when not applicable.
  int Instr = -1;
  /// Human-readable statement of the problem (LLVM error style: lowercase
  /// first letter, no trailing period).
  std::string Message;
  /// Supporting evidence, e.g. the rendered offending instruction(s).
  std::string Witness;
  /// Textual source location when the program came from an assembly file.
  SourceLoc Loc;
};

/// Collects diagnostics and renders the batch.
class DiagnosticEngine {
public:
  void report(Diagnostic D) { Diags.push_back(std::move(D)); }

  /// Convenience: report and return a reference for filling the optional
  /// fields (thread, position, witness) fluently.
  Diagnostic &report(Severity Sev, std::string Check, std::string Message);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  int size() const { return static_cast<int>(Diags.size()); }

  int count(Severity Sev) const;
  int errorCount() const { return count(Severity::Error); }
  int warningCount() const { return count(Severity::Warning); }
  int noteCount() const { return count(Severity::Note); }
  bool hasErrors() const { return errorCount() > 0; }

  /// First error diagnostic, or nullptr when there is none.
  const Diagnostic *firstError() const;

  /// Sort by severity (errors first), then thread, then position. Stable,
  /// so diagnostics from one check at one point keep their emission order.
  void sortBySeverity();

  /// Sort by program position alone: thread, then block, then instruction
  /// index, ignoring severity. Stable, so two findings at one point keep
  /// their emission order. This is the canonical order for parallel lint
  /// and verify runs — it depends only on the program, not on worker
  /// scheduling, so a `--jobs 8` run renders byte-identically to `--jobs 1`.
  void sortByPosition();

  /// Render one line per diagnostic plus a trailing summary line.
  void renderText(std::ostream &OS) const;

  /// Render the whole batch as a JSON object; parseDiagnosticsJSON inverts
  /// this exactly.
  void renderJSON(std::ostream &OS) const;

private:
  std::vector<Diagnostic> Diags;
};

/// Render a single diagnostic as one line of text (no trailing newline).
std::string formatDiagnostic(const Diagnostic &D);

/// Parse the output of DiagnosticEngine::renderJSON back into diagnostics.
ErrorOr<std::vector<Diagnostic>> parseDiagnosticsJSON(std::string_view JSON);

} // namespace npral

#endif // NPRAL_SUPPORT_DIAGNOSTICENGINE_H
