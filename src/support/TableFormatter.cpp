//===- TableFormatter.cpp -------------------------------------------------===//

#include "support/TableFormatter.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace npral;

TableFormatter::TableFormatter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

TableFormatter &TableFormatter::row() {
  Rows.emplace_back();
  return *this;
}

TableFormatter &TableFormatter::cell(const std::string &Text) {
  assert(!Rows.empty() && "cell() before row()");
  Rows.back().push_back(Text);
  return *this;
}

TableFormatter &TableFormatter::cell(long long Value) {
  return cell(std::to_string(Value));
}

TableFormatter &TableFormatter::cell(unsigned long long Value) {
  return cell(std::to_string(Value));
}

TableFormatter &TableFormatter::cell(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return cell(std::string(Buf));
}

TableFormatter &TableFormatter::percentCell(double Fraction, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%+.*f%%", Decimals, Fraction * 100.0);
  return cell(std::string(Buf));
}

void TableFormatter::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string &Cell = I < Row.size() ? Row[I] : std::string();
      OS << Cell << std::string(Widths[I] - Cell.size(), ' ');
      if (I + 1 != Widths.size())
        OS << "  ";
    }
    OS << '\n';
  };

  printRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  OS << std::string(Total + 2 * (Widths.empty() ? 0 : Widths.size() - 1), '-')
     << '\n';
  for (const auto &Row : Rows)
    printRow(Row);
}

void TableFormatter::printJSON(std::ostream &OS,
                               const std::string &Indent) const {
  auto writeString = [&OS](const std::string &S) {
    OS << '"';
    for (char C : S) {
      switch (C) {
      case '"':
        OS << "\\\"";
        break;
      case '\\':
        OS << "\\\\";
        break;
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      case '\r':
        OS << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          static const char Hex[] = "0123456789abcdef";
          OS << "\\u00" << Hex[(C >> 4) & 0xF] << Hex[C & 0xF];
        } else {
          OS << C;
        }
      }
    }
    OS << '"';
  };
  auto writeRow = [&](const std::vector<std::string> &Row) {
    OS << '[';
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        OS << ", ";
      writeString(Row[I]);
    }
    OS << ']';
  };
  OS << "{\n" << Indent << "  \"header\": ";
  writeRow(Header);
  OS << ",\n" << Indent << "  \"rows\": [";
  for (size_t I = 0; I < Rows.size(); ++I) {
    OS << (I ? ",\n" : "\n") << Indent << "    ";
    writeRow(Rows[I]);
  }
  OS << (Rows.empty() ? "]" : "\n" + Indent + "  ]");
  OS << "\n" << Indent << "}";
}

void TableFormatter::printCsv(std::ostream &OS) const {
  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        OS << ',';
      OS << Row[I];
    }
    OS << '\n';
  };
  printRow(Header);
  for (const auto &Row : Rows)
    printRow(Row);
}
