//===- Random.h - Deterministic RNG -----------------------------*- C++ -*-===//
///
/// \file
/// A small, fully deterministic xorshift128+ RNG. All randomised pieces of
/// NPRAL (workload payload data, the random program generator, property
/// tests) draw from this so that every experiment is reproducible from a
/// seed, independent of the standard library's distribution implementations.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SUPPORT_RANDOM_H
#define NPRAL_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace npral {

/// xorshift128+ generator with splitmix64 seeding.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  void reseed(uint64_t Seed);

  /// Uniform 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Bernoulli draw: true with probability Num/Den.
  bool nextChance(uint64_t Num, uint64_t Den);

  /// Uniform double in [0, 1).
  double nextDouble();

private:
  uint64_t State0 = 0;
  uint64_t State1 = 0;
};

} // namespace npral

#endif // NPRAL_SUPPORT_RANDOM_H
