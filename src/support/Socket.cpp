//===- Socket.cpp ---------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace npral;

namespace {

Status ioError(const char *What) {
  return Status::error(StatusCode::IOError,
                       std::string(What) + ": " + std::strerror(errno));
}

/// Fill a sockaddr_un for \p Path; fails when the path does not fit the
/// fixed sun_path field (107 usable bytes on Linux).
Status fillAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.empty())
    return Status::error(StatusCode::IOError, "empty socket path");
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error(StatusCode::IOError,
                         "socket path too long: '" + Path + "'");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  return Status::success();
}

} // namespace

ErrorOr<UnixSocket> UnixSocket::connectTo(const std::string &Path) {
  sockaddr_un Addr;
  if (Status S = fillAddr(Path, Addr); !S.ok())
    return S;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return ioError("socket");
  UnixSocket Sock(Fd);
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0)
    return ioError(("connect '" + Path + "'").c_str());
  return Sock;
}

Status UnixSocket::readExact(void *Buf, size_t Len, bool *SawEOF) const {
  if (SawEOF)
    *SawEOF = false;
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::read(Fd, P + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioError("read");
    }
    if (N == 0) {
      if (SawEOF && Got == 0)
        *SawEOF = true;
      return Status::error(StatusCode::IOError,
                           Got == 0 ? "connection closed"
                                    : "connection closed mid-frame");
    }
    Got += static_cast<size_t>(N);
  }
  return Status::success();
}

Status UnixSocket::writeAll(const void *Buf, size_t Len) const {
  const char *P = static_cast<const char *>(Buf);
  size_t Sent = 0;
  while (Sent < Len) {
    ssize_t N = ::send(Fd, P + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioError("write");
    }
    Sent += static_cast<size_t>(N);
  }
  return Status::success();
}

void UnixSocket::shutdownRead() const { ::shutdown(Fd, SHUT_RD); }
void UnixSocket::shutdownBoth() const { ::shutdown(Fd, SHUT_RDWR); }

void UnixSocket::setSendTimeoutMs(int Ms) const {
  timeval TV;
  TV.tv_sec = Ms / 1000;
  TV.tv_usec = (Ms % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV));
}

void UnixSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

WakePipe::WakePipe() {
  if (::pipe2(Fds, O_CLOEXEC) != 0) {
    Fds[0] = Fds[1] = -1;
    return;
  }
  // The write side must never block a signal handler; the read side is
  // drained non-blockingly too.
  ::fcntl(Fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(Fds[1], F_SETFL, O_NONBLOCK);
}

WakePipe::~WakePipe() {
  for (int &Fd : Fds)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
}

void WakePipe::poke() const {
  if (Fds[1] >= 0) {
    char B = 1;
    // Best-effort: a full pipe already guarantees a pending wake.
    [[maybe_unused]] ssize_t N = ::write(Fds[1], &B, 1);
  }
}

void WakePipe::drain() const {
  char Buf[64];
  while (Fds[0] >= 0 && ::read(Fds[0], Buf, sizeof(Buf)) > 0)
    ;
}

UnixListener::~UnixListener() { close(); }

Status UnixListener::listenOn(const std::string &P, int Backlog) {
  sockaddr_un Addr;
  if (Status S = fillAddr(P, Addr); !S.ok())
    return S;
  // A live server owns its path: probe before stealing it. Only a stale
  // socket file (connect refused) is unlinked.
  struct stat St;
  if (::lstat(P.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode))
      return Status::error(StatusCode::IOError,
                           "'" + P + "' exists and is not a socket");
    if (ErrorOr<UnixSocket> Probe = UnixSocket::connectTo(P); Probe.ok())
      return Status::error(StatusCode::IOError,
                           "address in use: a server is already listening "
                           "on '" +
                               P + "'");
    ::unlink(P.c_str());
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return ioError("socket");
  UnixSocket S(Fd);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return ioError(("bind '" + P + "'").c_str());
  if (::listen(Fd, Backlog) != 0) {
    ::unlink(P.c_str());
    return ioError("listen");
  }
  Sock = std::move(S);
  Path = P;
  return Status::success();
}

ErrorOr<UnixSocket> UnixListener::accept(int WakeFd) const {
  for (;;) {
    if (!Sock.valid())
      return Status::error(StatusCode::Unavailable, "listener closed");
    pollfd Fds[2];
    Fds[0].fd = Sock.fd();
    Fds[0].events = POLLIN;
    Fds[1].fd = WakeFd;
    Fds[1].events = POLLIN;
    int Rc = ::poll(Fds, WakeFd >= 0 ? 2 : 1, -1);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      return ioError("poll");
    }
    if (WakeFd >= 0 && (Fds[1].revents & (POLLIN | POLLHUP | POLLERR)))
      return Status::error(StatusCode::Unavailable, "accept interrupted");
    if (Fds[0].revents & (POLLHUP | POLLERR | POLLNVAL))
      return Status::error(StatusCode::IOError, "listener error");
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept4(Sock.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN)
        continue;
      return ioError("accept");
    }
    return UnixSocket(Fd);
  }
}

void UnixListener::close() {
  if (Sock.valid()) {
    Sock.close();
    if (!Path.empty())
      ::unlink(Path.c_str());
    Path.clear();
  }
}

int64_t npral::currentRSSBytes() {
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  int64_t KiB = 0;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmRSS:", 6) == 0) {
      KiB = std::strtoll(Line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(F);
  return KiB * 1024;
}
