//===- CycleTrace.cpp -----------------------------------------------------===//

#include "trace/CycleTrace.h"

#include "support/StringUtils.h"

#include <cassert>
#include <fstream>

using namespace npral;

const char *npral::threadPhaseName(ThreadPhase P) {
  switch (P) {
  case ThreadPhase::Run:
    return "Run";
  case ThreadPhase::SwitchPenalty:
    return "SwitchPenalty";
  case ThreadPhase::MemStall:
    return "MemStall";
  case ThreadPhase::ChannelWait:
    return "ChannelWait";
  case ThreadPhase::InterconnectStall:
    return "InterconnectStall";
  case ThreadPhase::ReadyWait:
    return "ReadyWait";
  case ThreadPhase::Halted:
    return "Halted";
  }
  return "?";
}

void CycleTrace::flushSlice(const std::pair<int64_t, int64_t> &Track,
                            const OpenSlice &S) {
  if (S.End <= S.Begin)
    return;
  CycleEvent E;
  E.Ph = 'X';
  E.Ts = S.Begin;
  E.Dur = S.End - S.Begin;
  E.Pid = Track.first;
  E.Tid = Track.second;
  E.Name = threadPhaseName(S.Phase);
  E.Cat = "sim";
  Events.push_back(std::move(E));
}

void CycleTrace::extendPhase(int64_t Pid, int64_t Tid, ThreadPhase P,
                             int64_t C0, int64_t C1) {
  ++Intervals; // counted before the empty-interval cut: guards still ran
  if (C1 <= C0)
    return;
  const std::pair<int64_t, int64_t> Track{Pid, Tid};
  PhaseTotals[Track][static_cast<size_t>(P)] += C1 - C0;
  auto It = Open.find(Track);
  if (It != Open.end()) {
    OpenSlice &S = It->second;
    if (S.Phase == P && S.End == C0) {
      S.End = C1;
      return;
    }
    flushSlice(Track, S);
  }
  Open[Track] = OpenSlice{P, C0, C1};
}

void CycleTrace::closeTrack(int64_t Pid) {
  auto It = Open.lower_bound({Pid, INT64_MIN});
  while (It != Open.end() && It->first.first == Pid) {
    flushSlice(It->first, It->second);
    It = Open.erase(It);
  }
}

void CycleTrace::completeSlice(int64_t Pid, int64_t Tid, std::string Name,
                               std::string Cat, int64_t Ts, int64_t Dur) {
  CycleEvent E;
  E.Ph = 'X';
  E.Ts = Ts;
  E.Dur = Dur;
  E.Pid = Pid;
  E.Tid = Tid;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  Events.push_back(std::move(E));
}

void CycleTrace::counter(int64_t Pid, std::string Name, int64_t Cycle,
                         int64_t V) {
  CycleEvent E;
  E.Ph = 'C';
  E.Ts = Cycle;
  E.Pid = Pid;
  E.Tid = 0;
  E.Name = std::move(Name);
  E.Cat = "telemetry";
  E.Args.emplace_back("value", V);
  Events.push_back(std::move(E));
}

void CycleTrace::flowStart(uint64_t Id, int64_t Pid, int64_t Tid,
                           std::string Name, int64_t Cycle) {
  CycleEvent E;
  E.Ph = 's';
  E.Ts = Cycle;
  E.Pid = Pid;
  E.Tid = Tid;
  E.FlowId = Id;
  E.Name = std::move(Name);
  E.Cat = "flow";
  Events.push_back(std::move(E));
}

void CycleTrace::flowFinish(uint64_t Id, int64_t Pid, int64_t Tid,
                            std::string Name, int64_t Cycle) {
  CycleEvent E;
  E.Ph = 'f';
  E.Ts = Cycle;
  E.Pid = Pid;
  E.Tid = Tid;
  E.FlowId = Id;
  E.Name = std::move(Name);
  E.Cat = "flow";
  Events.push_back(std::move(E));
}

int64_t CycleTrace::phaseCycles(int64_t Pid, int64_t Tid,
                                ThreadPhase P) const {
  auto It = PhaseTotals.find({Pid, Tid});
  return It == PhaseTotals.end() ? 0 : It->second[static_cast<size_t>(P)];
}

void CycleTrace::clear() {
  Events.clear();
  Intervals = 0;
  Open.clear();
  PhaseTotals.clear();
}

void CycleTrace::exportJSON(std::ostream &OS) const {
  assert(Open.empty() && "export with open thread-state slices; "
                         "closeTrack() every pid first");
  OS << "{\"displayTimeUnit\": \"ms\", \"virtualClock\": \"cycles\", "
        "\"traceEvents\": [";
  bool First = true;
  for (const CycleEvent &E : Events) {
    OS << (First ? "\n" : ",\n") << "{\"ph\": \"" << E.Ph << "\", \"name\": ";
    First = false;
    writeJSONString(OS, E.Name);
    if (!E.Cat.empty()) {
      OS << ", \"cat\": ";
      writeJSONString(OS, E.Cat);
    }
    OS << ", \"ts\": " << E.Ts;
    if (E.Ph == 'X')
      OS << ", \"dur\": " << E.Dur;
    OS << ", \"pid\": " << E.Pid << ", \"tid\": " << E.Tid;
    if (E.Ph == 's' || E.Ph == 'f') {
      OS << ", \"id\": " << E.FlowId;
      if (E.Ph == 'f')
        OS << ", \"bp\": \"e\"";
    }
    if (!E.Args.empty()) {
      OS << ", \"args\": {";
      bool FirstArg = true;
      for (const auto &[K, V] : E.Args) {
        if (!FirstArg)
          OS << ", ";
        FirstArg = false;
        writeJSONString(OS, K);
        OS << ": " << V;
      }
      OS << "}";
    }
    OS << "}";
  }
  OS << "\n]}\n";
}

Status CycleTrace::writeFile(const std::string &Path) const {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS)
    return Status::error("cannot open trace output file: " + Path);
  exportJSON(OS);
  OS.flush();
  if (!OS)
    return Status::error("failed writing trace output file: " + Path);
  return Status::success();
}
