//===- TraceEngine.h - Chrome trace-event recording -------------*- C++ -*-===//
///
/// \file
/// The tracing half of the observability layer: a process-wide TraceEngine
/// that records begin/end spans and instant events into per-thread buffers
/// and exports the batch as Chrome trace-event JSON (loadable in Perfetto
/// or chrome://tracing).
///
/// Design constraints, in order:
///
///  1. *Near-zero cost when disabled.* Every instrumentation site is
///     guarded by one relaxed atomic load (`traceEnabled()`); the
///     NPRAL_TRACE_* macros evaluate no arguments and construct nothing
///     until that load says yes. Compiling with -DNPRAL_TRACE=0 removes
///     the sites entirely. bench/trace_overhead pins the disabled cost.
///
///  2. *Thread safety without contention.* Each OS thread appends to its
///     own buffer; the engine's mutex is taken only to register a new
///     buffer (once per thread per engine generation) and to export.
///     Buffers are never written concurrently, so the tracer itself is
///     clean under TSan even when the batch pipeline fans out.
///
///  3. *Deterministic content.* Event names, categories, and args depend
///     only on the work performed, never on scheduling; only `ts` and
///     `tid` vary run to run. The determinism test compares the event
///     multiset of --jobs 1 against --jobs N.
///
/// Export requires quiescence: every thread that traced must have finished
/// (the batch pipeline joins its pool before the driver exports) and no
/// span may still be open.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_TRACEENGINE_H
#define NPRAL_TRACE_TRACEENGINE_H

#include "support/Diagnostics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace npral {

/// Key/value annotations attached to an event. Values are stored verbatim
/// and exported as JSON strings; keep them short and deterministic.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/// One recorded event. `Ph` follows the Chrome trace-event phase codes:
/// 'B' span begin, 'E' span end, 'i' instant.
struct TraceEvent {
  char Ph = 'i';
  /// Nanoseconds since the engine epoch (exported as microseconds).
  int64_t TsNs = 0;
  std::string Name;
  std::string Cat;
  TraceArgs Args;
};

class TraceEngine {
public:
  /// The process-wide engine every NPRAL_TRACE_* macro records into.
  static TraceEngine &global();

  /// Turn recording on or off. Disabled is the default; instrumentation
  /// sites then cost one relaxed atomic load.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool isEnabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Record an instant event on the calling thread's buffer.
  void instant(std::string_view Cat, std::string_view Name,
               TraceArgs Args = {});

  /// Total events recorded since the last clear().
  int64_t eventCount() const;

  /// Drop every buffer and start a new generation. Threads that cached a
  /// buffer pointer re-register on their next event. Requires the same
  /// quiescence as export.
  void clear();

  /// Export everything recorded as a Chrome trace-event JSON document:
  /// one track per recording thread, events in per-track append order
  /// (which is per-track time order).
  void exportJSON(std::ostream &OS) const;

  /// exportJSON to a file.
  Status writeFile(const std::string &Path) const;

  /// Per-thread append-only event sink. Owned by the engine, written only
  /// by the registering thread. Public so the thread-local handle in the
  /// implementation can name it; not part of the recording API.
  struct Buffer {
    int Tid = 0;
    std::vector<TraceEvent> Events;
  };

private:
  friend class TraceSpan;

  TraceEngine();

  /// The calling thread's buffer for the current generation, registering
  /// one if needed.
  Buffer &localBuffer();
  int64_t now() const;
  void append(Buffer &B, char Ph, std::string_view Cat, std::string_view Name,
              TraceArgs Args);

  std::atomic<bool> Enabled{false};
  /// Bumped by clear() so threads drop stale buffer pointers.
  std::atomic<uint64_t> Generation{1};
  int64_t EpochNs = 0;
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Buffer>> Buffers;
};

/// True when the global engine is recording; the macro guard.
inline bool traceEnabled() { return TraceEngine::global().isEnabled(); }

/// RAII span: emits 'B' at construction and the matching 'E' at
/// destruction, both into the constructing thread's buffer — so begin/end
/// pairs are balanced per track by construction, even if the engine is
/// disabled or cleared mid-span (a span that saw clear() drops its end
/// event instead of unbalancing the new generation).
class TraceSpan {
public:
  TraceSpan(std::string_view Cat, std::string_view Name, TraceArgs Args = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceEngine::Buffer *Buf = nullptr;
  uint64_t Gen = 0;
  std::string Name;
  std::string Cat;
};

// Instrumentation macros. NPRAL_TRACE defaults to 1; building with
// -DNPRAL_TRACE=0 compiles every site out.
#ifndef NPRAL_TRACE
#define NPRAL_TRACE 1
#endif

#if NPRAL_TRACE
#define NPRAL_TRACE_CONCAT_IMPL(A, B) A##B
#define NPRAL_TRACE_CONCAT(A, B) NPRAL_TRACE_CONCAT_IMPL(A, B)
/// Open a span covering the rest of the enclosing scope.
#define NPRAL_TRACE_SPAN(Cat, Name)                                            \
  ::npral::TraceSpan NPRAL_TRACE_CONCAT(NpralTraceSpan_, __LINE__)(Cat, Name)
/// Span with args; the arg expressions (a brace list of {"key", value}
/// pairs) are only evaluated when tracing is enabled.
#define NPRAL_TRACE_SPAN_ARGS(Cat, Name, ...)                                  \
  ::npral::TraceSpan NPRAL_TRACE_CONCAT(NpralTraceSpan_, __LINE__)(            \
      Cat, Name,                                                               \
      ::npral::traceEnabled() ? ::npral::TraceArgs{__VA_ARGS__}                \
                              : ::npral::TraceArgs())
/// Record an instant event; arguments are not evaluated when disabled.
#define NPRAL_TRACE_INSTANT(...)                                               \
  do {                                                                         \
    if (::npral::traceEnabled())                                               \
      ::npral::TraceEngine::global().instant(__VA_ARGS__);                     \
  } while (false)
#else
#define NPRAL_TRACE_SPAN(Cat, Name)                                            \
  do {                                                                         \
  } while (false)
#define NPRAL_TRACE_SPAN_ARGS(Cat, Name, ...)                                  \
  do {                                                                         \
  } while (false)
#define NPRAL_TRACE_INSTANT(...)                                               \
  do {                                                                         \
  } while (false)
#endif

} // namespace npral

#endif // NPRAL_TRACE_TRACEENGINE_H
