//===- TraceEngine.cpp ----------------------------------------------------===//

#include "trace/TraceEngine.h"

#include "support/StringUtils.h"

#include <chrono>
#include <fstream>

using namespace npral;

namespace {

int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Thread-local handle into the engine: valid while the generation matches.
struct LocalHandle {
  uint64_t Gen = 0;
  TraceEngine::Buffer *Buf = nullptr;
};

thread_local LocalHandle Local;

} // namespace

TraceEngine::TraceEngine() : EpochNs(steadyNowNs()) {}

TraceEngine &TraceEngine::global() {
  static TraceEngine Engine;
  return Engine;
}

int64_t TraceEngine::now() const { return steadyNowNs() - EpochNs; }

TraceEngine::Buffer &TraceEngine::localBuffer() {
  const uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (Local.Gen == Gen && Local.Buf)
    return *Local.Buf;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Owned = std::make_unique<Buffer>();
  Owned->Tid = static_cast<int>(Buffers.size());
  Buffers.push_back(std::move(Owned));
  Local.Gen = Gen;
  Local.Buf = Buffers.back().get();
  return *Local.Buf;
}

void TraceEngine::append(Buffer &B, char Ph, std::string_view Cat,
                         std::string_view Name, TraceArgs Args) {
  TraceEvent E;
  E.Ph = Ph;
  E.TsNs = now();
  E.Name = std::string(Name);
  E.Cat = std::string(Cat);
  E.Args = std::move(Args);
  B.Events.push_back(std::move(E));
}

void TraceEngine::instant(std::string_view Cat, std::string_view Name,
                          TraceArgs Args) {
  if (!isEnabled())
    return;
  append(localBuffer(), 'i', Cat, Name, std::move(Args));
}

int64_t TraceEngine::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  int64_t N = 0;
  for (const std::unique_ptr<Buffer> &B : Buffers)
    N += static_cast<int64_t>(B->Events.size());
  return N;
}

void TraceEngine::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Buffers.clear();
  Generation.fetch_add(1, std::memory_order_acq_rel);
  EpochNs = steadyNowNs();
}

void TraceEngine::exportJSON(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  OS << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool First = true;
  for (const std::unique_ptr<Buffer> &B : Buffers) {
    for (const TraceEvent &E : B->Events) {
      OS << (First ? "\n    {" : ",\n    {");
      First = false;
      OS << "\"ph\": \"" << E.Ph << "\", ";
      // Chrome's ts unit is microseconds; keep the nanosecond precision in
      // the fraction.
      OS << formatString("\"ts\": %lld.%03d, ",
                         static_cast<long long>(E.TsNs / 1000),
                         static_cast<int>(E.TsNs % 1000));
      OS << "\"pid\": 1, \"tid\": " << B->Tid << ", ";
      OS << "\"name\": ";
      writeJSONString(OS, E.Name);
      OS << ", \"cat\": ";
      writeJSONString(OS, E.Cat);
      if (E.Ph == 'i')
        OS << ", \"s\": \"t\"";
      if (!E.Args.empty()) {
        OS << ", \"args\": {";
        for (size_t I = 0; I < E.Args.size(); ++I) {
          if (I)
            OS << ", ";
          writeJSONString(OS, E.Args[I].first);
          OS << ": ";
          writeJSONString(OS, E.Args[I].second);
        }
        OS << "}";
      }
      OS << "}";
    }
  }
  OS << (First ? "]" : "\n  ]") << "\n}\n";
}

Status TraceEngine::writeFile(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return Status::error("cannot write trace file '" + Path + "'");
  exportJSON(Out);
  return Status::success();
}

TraceSpan::TraceSpan(std::string_view Cat, std::string_view Name,
                     TraceArgs Args) {
  TraceEngine &Engine = TraceEngine::global();
  if (!Engine.isEnabled())
    return;
  Gen = Engine.Generation.load(std::memory_order_acquire);
  Buf = &Engine.localBuffer();
  this->Name = std::string(Name);
  this->Cat = std::string(Cat);
  Engine.append(*Buf, 'B', this->Cat, this->Name, std::move(Args));
}

TraceSpan::~TraceSpan() {
  if (!Buf)
    return;
  TraceEngine &Engine = TraceEngine::global();
  // A clear() between construction and destruction destroyed the buffer;
  // dropping the end event keeps the new generation balanced.
  if (Engine.Generation.load(std::memory_order_acquire) != Gen)
    return;
  Engine.append(*Buf, 'E', Cat, Name, {});
}
