//===- TraceValidator.h - Strict Chrome trace-event parsing -----*- C++ -*-===//
///
/// \file
/// A strict parser/validator for the Chrome trace-event JSON the
/// TraceEngine exports. "Strict" means structural JSON errors, unknown
/// phases, unbalanced begin/end pairs, and time going backwards on a track
/// are all hard failures — the CI job and the round-trip tests run every
/// emitted trace through this before calling it valid.
///
/// Checked invariants:
///  * the document is one JSON object whose "traceEvents" is an array of
///    event objects (a top-level bare array is also accepted — Chrome
///    reads both);
///  * every event has string "ph"/"name", and numeric "ts"/"pid"/"tid";
///  * every "ph" is one of B, E, X, i, C, s, f (anything else is still a
///    hard failure);
///  * B/E events nest and balance per (pid, tid) track, with matching
///    names;
///  * "ts" is non-decreasing along each track for B/E/i ("X" events are
///    placed by start time and exempt, matching Chrome's sorting
///    behavior); counter ('C') series are instead non-decreasing per
///    (pid, name), and flow events are ordered through their id;
///  * every 'C' event carries at least one numeric arg (the counter
///    value);
///  * flow events pair up: 's' opens an id (reopening an open id is an
///    error), 'f' closes an id previously opened at a ts <= its own, and
///    no id is left open at end of document.
///
/// Structural errors report the byte offset *and* line of the failure plus
/// the key being parsed, so a bad event in a megabyte of JSON is findable.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_TRACEVALIDATOR_H
#define NPRAL_TRACE_TRACEVALIDATOR_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace npral {

/// One parsed trace event; Args values hold the literal JSON token text
/// (quotes stripped for strings) so comparisons are exact.
struct ParsedTraceEvent {
  char Ph = '?';
  std::string Name;
  std::string Cat;
  /// Microseconds (wall traces) or cycles (virtual-time traces), as
  /// written (fractional allowed).
  double Ts = 0;
  /// Slice duration ('X' events); 0 otherwise.
  double Dur = 0;
  int64_t Pid = 0;
  int64_t Tid = 0;
  /// Flow id ('s'/'f' events); valid only when HasId.
  uint64_t Id = 0;
  bool HasId = false;
  std::vector<std::pair<std::string, std::string>> Args;

  /// Scheduling-independent identity: everything except ts/pid/tid, with
  /// args order-normalized. The determinism test compares multisets of
  /// these keys across worker counts.
  std::string contentKey() const;
};

/// Parse and validate \p JSON; returns the events in document order or the
/// first violation.
ErrorOr<std::vector<ParsedTraceEvent>> parseChromeTrace(std::string_view JSON);

/// Validation without the events.
Status validateChromeTrace(std::string_view JSON);

} // namespace npral

#endif // NPRAL_TRACE_TRACEVALIDATOR_H
