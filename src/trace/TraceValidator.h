//===- TraceValidator.h - Strict Chrome trace-event parsing -----*- C++ -*-===//
///
/// \file
/// A strict parser/validator for the Chrome trace-event JSON the
/// TraceEngine exports. "Strict" means structural JSON errors, unknown
/// phases, unbalanced begin/end pairs, and time going backwards on a track
/// are all hard failures — the CI job and the round-trip tests run every
/// emitted trace through this before calling it valid.
///
/// Checked invariants:
///  * the document is one JSON object whose "traceEvents" is an array of
///    event objects (a top-level bare array is also accepted — Chrome
///    reads both);
///  * every event has string "ph"/"name", and numeric "ts"/"pid"/"tid";
///  * every "ph" is one of B, E, X, i;
///  * B/E events nest and balance per (pid, tid) track, with matching
///    names;
///  * "ts" is non-decreasing along each track ("X" events are placed by
///    start time and exempt, matching Chrome's sorting behavior).
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_TRACEVALIDATOR_H
#define NPRAL_TRACE_TRACEVALIDATOR_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace npral {

/// One parsed trace event; Args values hold the literal JSON token text
/// (quotes stripped for strings) so comparisons are exact.
struct ParsedTraceEvent {
  char Ph = '?';
  std::string Name;
  std::string Cat;
  /// Microseconds, as written (fractional allowed).
  double Ts = 0;
  int64_t Pid = 0;
  int64_t Tid = 0;
  std::vector<std::pair<std::string, std::string>> Args;

  /// Scheduling-independent identity: everything except ts/pid/tid, with
  /// args order-normalized. The determinism test compares multisets of
  /// these keys across worker counts.
  std::string contentKey() const;
};

/// Parse and validate \p JSON; returns the events in document order or the
/// first violation.
ErrorOr<std::vector<ParsedTraceEvent>> parseChromeTrace(std::string_view JSON);

/// Validation without the events.
Status validateChromeTrace(std::string_view JSON);

} // namespace npral

#endif // NPRAL_TRACE_TRACEVALIDATOR_H
