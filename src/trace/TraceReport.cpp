//===- TraceReport.cpp ----------------------------------------------------===//

#include "trace/TraceReport.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace npral;

namespace {

/// Nearest-rank percentile over a sorted vector; 0 when empty.
double nearestRank(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  const double Clamped = std::clamp(Q, 0.0, 100.0);
  size_t Rank = static_cast<size_t>(
      std::ceil(Clamped / 100.0 * static_cast<double>(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  return Sorted[std::min(Rank, Sorted.size()) - 1];
}

/// Format a cycle count / duration without trailing ".0" noise: integers
/// print as integers, everything else with one decimal.
std::string fmtNum(double V) {
  if (V == std::floor(V) && std::abs(V) < 1e15)
    return formatString("%lld", static_cast<long long>(V));
  return formatString("%.1f", V);
}

/// An ASCII percentage bar of width \p Width.
std::string bar(double Fraction, int Width) {
  const int Filled = static_cast<int>(
      std::lround(std::clamp(Fraction, 0.0, 1.0) * Width));
  std::string S;
  S.reserve(static_cast<size_t>(Width));
  for (int I = 0; I < Width; ++I)
    S += I < Filled ? '#' : '.';
  return S;
}

/// A sparkline of the series sampled/duplicated onto \p Width columns,
/// using the eight block glyphs (min..max normalised per series).
std::string sparkline(const std::vector<double> &Values, int Width) {
  static const char *Glyphs[8] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (Values.empty())
    return "";
  double Lo = Values[0], Hi = Values[0];
  for (double V : Values) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  const size_t N = Values.size();
  const int Cols = std::min<int>(Width, static_cast<int>(N));
  std::string S;
  for (int C = 0; C < Cols; ++C) {
    // Column C summarises the slice [C, C+1) of the series scaled to Cols
    // columns; take the max inside the slice so spikes stay visible.
    const size_t Begin = static_cast<size_t>(C) * N / static_cast<size_t>(Cols);
    const size_t End = std::max(
        Begin + 1, (static_cast<size_t>(C) + 1) * N / static_cast<size_t>(Cols));
    double V = Values[Begin];
    for (size_t I = Begin + 1; I < End && I < N; ++I)
      V = std::max(V, Values[I]);
    int Level = 0;
    if (Hi > Lo)
      Level = static_cast<int>((V - Lo) / (Hi - Lo) * 7.0 + 0.5);
    S += Glyphs[std::clamp(Level, 0, 7)];
  }
  return S;
}

void htmlEscape(std::ostream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '&':
      OS << "&amp;";
      break;
    case '<':
      OS << "&lt;";
      break;
    case '>':
      OS << "&gt;";
      break;
    case '"':
      OS << "&quot;";
      break;
    default:
      OS << C;
    }
  }
}

/// Display name for a track following the cycle-trace pid convention:
/// pid 0 is the interconnect fabric, pid E+1 is engine E (a plain
/// single-simulator run is pid 1 == "engine 0").
std::string trackLabel(int64_t Pid, int64_t Tid) {
  if (Pid == 0)
    return formatString("fabric lane %lld", static_cast<long long>(Tid));
  return formatString("engine %lld thread %lld",
                      static_cast<long long>(Pid - 1),
                      static_cast<long long>(Tid));
}

} // namespace

double SliceBucket::p(double Q) const { return nearestRank(Durations, Q); }
double FlowReport::p(double Q) const { return nearestRank(Latencies, Q); }

TraceReport TraceReport::build(const std::vector<ParsedTraceEvent> &Events) {
  TraceReport R;
  R.NumEvents = static_cast<int64_t>(Events.size());

  std::map<std::pair<int64_t, int64_t>, TrackReport> Tracks;
  // Open B events per track, for wall-clock traces that use B/E pairs.
  std::map<std::pair<int64_t, int64_t>,
           std::vector<std::pair<std::string, double>>>
      OpenBegins;
  std::map<std::pair<int64_t, std::string>, CounterReport> Counters;
  // Flow id -> (name, start ts).
  std::map<uint64_t, std::pair<std::string, double>> OpenFlows;
  std::map<std::string, FlowReport> Flows;

  auto AddSlice = [&](int64_t Pid, int64_t Tid, const std::string &Name,
                      double Dur) {
    TrackReport &T = Tracks[{Pid, Tid}];
    T.Pid = Pid;
    T.Tid = Tid;
    SliceBucket &B = T.ByName[Name];
    ++B.Count;
    B.TotalDur += Dur;
    B.Durations.push_back(Dur);
    T.TotalDur += Dur;
  };

  for (const ParsedTraceEvent &E : Events) {
    switch (E.Ph) {
    case 'X':
      AddSlice(E.Pid, E.Tid, E.Name, E.Dur);
      break;
    case 'B':
      OpenBegins[{E.Pid, E.Tid}].emplace_back(E.Name, E.Ts);
      break;
    case 'E': {
      auto &Stack = OpenBegins[{E.Pid, E.Tid}];
      if (!Stack.empty()) {
        AddSlice(E.Pid, E.Tid, Stack.back().first, E.Ts - Stack.back().second);
        Stack.pop_back();
      }
      break;
    }
    case 'C': {
      if (E.Args.empty())
        break;
      CounterReport &C = Counters[{E.Pid, E.Name}];
      C.Pid = E.Pid;
      C.Name = E.Name;
      // The first numeric arg is the counter value (the validator already
      // required one).
      C.Values.push_back(std::strtod(E.Args.front().second.c_str(), nullptr));
      break;
    }
    case 's':
      if (E.HasId)
        OpenFlows[E.Id] = {E.Name, E.Ts};
      break;
    case 'f': {
      if (!E.HasId)
        break;
      auto It = OpenFlows.find(E.Id);
      if (It == OpenFlows.end())
        break;
      Flows[It->second.first].Latencies.push_back(E.Ts - It->second.second);
      OpenFlows.erase(It);
      break;
    }
    default:
      break; // 'i' and anything else carries no duration.
    }
  }

  for (auto &[Key, T] : Tracks) {
    for (auto &[Name, B] : T.ByName)
      std::sort(B.Durations.begin(), B.Durations.end());
    R.Tracks.push_back(std::move(T));
  }
  for (auto &[Key, C] : Counters) {
    if (C.Values.empty())
      continue;
    C.Min = *std::min_element(C.Values.begin(), C.Values.end());
    C.Max = *std::max_element(C.Values.begin(), C.Values.end());
    C.Last = C.Values.back();
    R.Counters.push_back(std::move(C));
  }
  for (auto &[Name, F] : Flows) {
    F.Name = Name;
    std::sort(F.Latencies.begin(), F.Latencies.end());
    R.Flows.push_back(std::move(F));
  }
  return R;
}

void TraceReport::renderText(std::ostream &OS) const {
  OS << "trace report: " << NumEvents << " events, " << Tracks.size()
     << " timeline track(s), " << Counters.size() << " counter series, "
     << Flows.size() << " flow name(s)\n";
  for (const TrackReport &T : Tracks) {
    OS << "\n[" << trackLabel(T.Pid, T.Tid) << "] total "
       << fmtNum(T.TotalDur) << "\n";
    for (const auto &[Name, B] : T.ByName) {
      const double Frac = T.TotalDur > 0 ? B.TotalDur / T.TotalDur : 0;
      OS << formatString("  %-18s %6.1f%% |%s| ", Name.c_str(), Frac * 100.0,
                         bar(Frac, 30).c_str())
         << fmtNum(B.TotalDur) << " over " << B.Count
         << " slice(s), p50=" << fmtNum(B.p(50)) << " p95=" << fmtNum(B.p(95))
         << " p99=" << fmtNum(B.p(99)) << "\n";
    }
  }
  if (!Counters.empty()) {
    OS << "\ncounters:\n";
    for (const CounterReport &C : Counters)
      OS << formatString("  pid %-3lld %-28s ",
                         static_cast<long long>(C.Pid), C.Name.c_str())
         << sparkline(C.Values, 32) << "  min=" << fmtNum(C.Min)
         << " max=" << fmtNum(C.Max) << " last=" << fmtNum(C.Last) << " ("
         << C.Values.size() << " samples)\n";
  }
  if (!Flows.empty()) {
    OS << "\nflows:\n";
    for (const FlowReport &F : Flows)
      OS << formatString("  %-18s ", F.Name.c_str()) << F.Latencies.size()
         << " delivered, latency p50=" << fmtNum(F.p(50))
         << " p95=" << fmtNum(F.p(95)) << " p99=" << fmtNum(F.p(99))
         << " max=" << fmtNum(F.Latencies.empty() ? 0 : F.Latencies.back())
         << "\n";
  }
}

void TraceReport::renderHTML(std::ostream &OS) const {
  OS << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
        "<title>npral trace report</title>\n<style>\n"
        "body{font-family:system-ui,sans-serif;margin:2em;max-width:60em}\n"
        "h2{border-bottom:1px solid #ccc;padding-bottom:.2em}\n"
        "table{border-collapse:collapse;margin:.5em 0}\n"
        "td,th{padding:.2em .6em;text-align:left;font-size:.9em}\n"
        ".bar{background:#e8e8e8;width:12em;height:.9em;display:inline-block}"
        "\n.bar>span{background:#4a84c4;height:100%;display:block}\n"
        ".spark{font-family:monospace;color:#4a84c4}\n"
        ".num{font-variant-numeric:tabular-nums}\n</style></head><body>\n"
        "<h1>npral trace report</h1>\n<p>"
     << NumEvents << " events &middot; " << Tracks.size()
     << " timeline track(s) &middot; " << Counters.size()
     << " counter series &middot; " << Flows.size() << " flow name(s)</p>\n";
  for (const TrackReport &T : Tracks) {
    OS << "<h2>";
    htmlEscape(OS, trackLabel(T.Pid, T.Tid));
    OS << "</h2>\n<table><tr><th>state</th><th>share</th><th></th>"
          "<th>cycles</th><th>slices</th><th>p50</th><th>p95</th>"
          "<th>p99</th></tr>\n";
    for (const auto &[Name, B] : T.ByName) {
      const double Frac = T.TotalDur > 0 ? B.TotalDur / T.TotalDur : 0;
      OS << "<tr><td>";
      htmlEscape(OS, Name);
      OS << formatString("</td><td class=num>%.1f%%</td>", Frac * 100.0)
         << formatString("<td><span class=bar><span style=\"width:%.1f%%\">"
                         "</span></span></td>",
                         std::clamp(Frac, 0.0, 1.0) * 100.0)
         << "<td class=num>" << fmtNum(B.TotalDur) << "</td><td class=num>"
         << B.Count << "</td><td class=num>" << fmtNum(B.p(50))
         << "</td><td class=num>" << fmtNum(B.p(95)) << "</td><td class=num>"
         << fmtNum(B.p(99)) << "</td></tr>\n";
    }
    OS << "</table>\n";
  }
  if (!Counters.empty()) {
    OS << "<h2>counters</h2>\n<table><tr><th>pid</th><th>name</th>"
          "<th>series</th><th>min</th><th>max</th><th>last</th>"
          "<th>samples</th></tr>\n";
    for (const CounterReport &C : Counters) {
      OS << "<tr><td class=num>" << C.Pid << "</td><td>";
      htmlEscape(OS, C.Name);
      OS << "</td><td class=spark>" << sparkline(C.Values, 48)
         << "</td><td class=num>" << fmtNum(C.Min) << "</td><td class=num>"
         << fmtNum(C.Max) << "</td><td class=num>" << fmtNum(C.Last)
         << "</td><td class=num>" << C.Values.size() << "</td></tr>\n";
    }
    OS << "</table>\n";
  }
  if (!Flows.empty()) {
    OS << "<h2>flows</h2>\n<table><tr><th>name</th><th>delivered</th>"
          "<th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n";
    for (const FlowReport &F : Flows) {
      OS << "<tr><td>";
      htmlEscape(OS, F.Name);
      OS << "</td><td class=num>" << F.Latencies.size()
         << "</td><td class=num>" << fmtNum(F.p(50)) << "</td><td class=num>"
         << fmtNum(F.p(95)) << "</td><td class=num>" << fmtNum(F.p(99))
         << "</td><td class=num>"
         << fmtNum(F.Latencies.empty() ? 0 : F.Latencies.back())
         << "</td></tr>\n";
    }
    OS << "</table>\n";
  }
  OS << "</body></html>\n";
}
