//===- Telemetry.h - Cycle-period sampling into traces and rings -*- C++ -*-===//
///
/// \file
/// Streamed time-series telemetry from the running simulator. A
/// TelemetrySampler fires on a fixed virtual-time period (every N simulated
/// cycles) and records each sample twice:
///
///  * as Perfetto counter tracks — one 'C' event per value into the
///    attached CycleTrace, so occupancy/ready/credits/in-flight render as
///    counter plots under the engine's process track;
///  * as a TelemetrySample into a bounded TelemetryRing — the programmatic
///    sink for recent samples that ROADMAP item 4 (online traffic-adaptive
///    reallocation) will read to detect drift without parsing a trace file.
///
/// Sampling is driven by the simulation itself (the scheduler loop for a
/// plain run, the lockstep slice boundary for a grid), so sample cycles and
/// values are deterministic; the host never perturbs them. Either sink may
/// be null; a sampler with neither is never constructed in practice.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_TELEMETRY_H
#define NPRAL_TRACE_TELEMETRY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace npral {

class CycleTrace;

/// One sample instant: every value recorded at that cycle, in recording
/// order, keyed by the fully qualified counter name (`grid.engine2.ready`,
/// `fabric.in_flight`, ...).
struct TelemetrySample {
  int64_t Cycle = 0;
  std::vector<std::pair<std::string, int64_t>> Values;
};

/// Fixed-capacity ring of the most recent samples. Single-writer (the
/// simulation driving the sampler); readers consume between runs.
class TelemetryRing {
public:
  explicit TelemetryRing(size_t Capacity = 256);

  size_t capacity() const { return Buf.size(); }
  /// Samples currently retained (<= capacity()).
  size_t size() const { return Count; }
  /// Samples pushed over the ring's lifetime (>= size(); the difference is
  /// what was evicted).
  int64_t totalPushed() const { return Pushed; }

  void push(TelemetrySample S);

  /// Retained sample \p I, 0 = oldest retained .. size()-1 = newest.
  const TelemetrySample &at(size_t I) const;

  /// Copy of the retained samples, oldest first.
  std::vector<TelemetrySample> snapshot() const;

  void clear();

private:
  std::vector<TelemetrySample> Buf;
  /// Index the next push writes to.
  size_t Head = 0;
  size_t Count = 0;
  int64_t Pushed = 0;
};

/// Periodic sampler. The driving loop checks due(now) and, when true,
/// brackets its value() calls in beginSample()/endSample(); endSample
/// advances the schedule past the cycle the simulation has reached, so a
/// coarse-stepping driver takes at most one sample per check instead of
/// back-filling stale ones.
class TelemetrySampler {
public:
  /// \p PeriodCycles must be >= 1. Either sink may be null.
  TelemetrySampler(int64_t PeriodCycles, CycleTrace *Trace,
                   TelemetryRing *Ring);

  int64_t period() const { return Period; }
  /// Cycle of the next scheduled sample.
  int64_t nextDue() const { return Next; }
  bool due(int64_t Now) const { return Now >= Next; }

  /// Open a sample at \p Cycle (callers pass nextDue(), keeping sample
  /// timestamps on the period grid).
  void beginSample(int64_t Cycle);
  /// Record one value of the open sample: a 'C' event named \p Name on
  /// process track \p Pid, and a (\p Name, \p V) entry in the ring sample.
  void value(int64_t Pid, const std::string &Name, int64_t V);
  /// Close the sample, push it to the ring, and schedule the next sample at
  /// the first period multiple after \p ReachedCycle.
  void endSample(int64_t ReachedCycle);

private:
  int64_t Period;
  int64_t Next;
  CycleTrace *Trace;
  TelemetryRing *Ring;
  TelemetrySample Pending;
  bool InSample = false;
};

} // namespace npral

#endif // NPRAL_TRACE_TELEMETRY_H
