//===- CycleTrace.h - Virtual-time (cycle-domain) tracing -------*- C++ -*-===//
///
/// \file
/// The cycle-domain half of the tracing layer. Where TraceEngine records
/// wall-clock spans of the *toolchain*, a CycleTrace records what the
/// *simulated machine* did, with `ts` measured in simulated cycles — a
/// virtual clock. Because virtual time depends only on the work simulated,
/// never on host scheduling, two runs of the same scenario export
/// byte-identical traces regardless of worker count or engine interleaving
/// (pinned by tests/trace/CycleTraceTest).
///
/// Three event families, all loadable in Perfetto alongside wall traces:
///
///  * Thread-state slices — one 'X' slice per contiguous interval of a
///    thread's state machine (Run / SwitchPenalty / MemStall / ChannelWait /
///    InterconnectStall / ReadyWait / Halted). Per thread the slices
///    partition the timeline, so their durations sum exactly to the seven
///    sim.thread<T>.*_cycles buckets; the simulator feeds every interval it
///    accounts through extendPhase() and the cross-check is pinned by test.
///
///  * Counter tracks — 'C' events with one numeric `value` arg, sampled on
///    a fixed cycle period by a TelemetrySampler (trace/Telemetry.h):
///    occupancy, ready-queue depth, credits in hand, in-flight messages.
///
///  * Flow events — 's'/'f' pairs keyed by the interconnect message
///    sequence number, linking each grid WorkDispatch send (on the fabric
///    track, inside an 'X' slice spanning the modeled latency) to its
///    delivery on the destination thread's track, so cross-engine latency
///    renders as arrows.
///
/// Track convention: pid 0 is the interconnect fabric (tid = destination
/// engine lane), engine E is pid E+1 (tid = thread index); a plain
/// single-simulator run uses pid 1. A CycleTrace is owned by one run and is
/// not thread-safe — concurrent jobs each record into their own instance,
/// which is what makes the determinism guarantee trivial to keep.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_CYCLETRACE_H
#define NPRAL_TRACE_CYCLETRACE_H

#include "support/Diagnostics.h"

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace npral {

/// The simulator's per-thread state machine, one value per cycle bucket of
/// ThreadStats. Slice names in the export are threadPhaseName() strings.
enum class ThreadPhase {
  Run,
  SwitchPenalty,
  MemStall,
  ChannelWait,
  InterconnectStall,
  ReadyWait,
  Halted,
};

constexpr int NumThreadPhases = 7;

const char *threadPhaseName(ThreadPhase P);

/// One recorded cycle-domain event. `Ph` is 'X' (complete slice), 'C'
/// (counter), 's' (flow start) or 'f' (flow finish); `Ts`/`Dur` are cycles.
struct CycleEvent {
  char Ph = 'X';
  int64_t Ts = 0;
  /// 'X' only.
  int64_t Dur = 0;
  int64_t Pid = 0;
  int64_t Tid = 0;
  /// 's'/'f' only: the flow id pairing start with finish.
  uint64_t FlowId = 0;
  std::string Name;
  std::string Cat;
  /// 'C' only: numeric counter args (always exactly one, key "value").
  std::vector<std::pair<std::string, int64_t>> Args;
};

class CycleTrace {
public:
  /// Extend thread (\p Pid, \p Tid)'s state timeline with phase \p P over
  /// [\p C0, \p C1). Contiguous same-phase intervals coalesce into one
  /// slice; a phase change (or a gap) flushes the open slice as an 'X'
  /// event. Intervals must arrive in non-decreasing time order per track,
  /// which the simulator's accounting guarantees.
  void extendPhase(int64_t Pid, int64_t Tid, ThreadPhase P, int64_t C0,
                   int64_t C1);

  /// Flush every open coalesced slice of process \p Pid (end of that
  /// engine's run).
  void closeTrack(int64_t Pid);

  /// Record a generic complete slice (fabric message spans).
  void completeSlice(int64_t Pid, int64_t Tid, std::string Name,
                     std::string Cat, int64_t Ts, int64_t Dur);

  /// Record a counter sample: a 'C' event named \p Name with the single
  /// numeric arg {"value": V}. Perfetto renders one counter track per
  /// (pid, name).
  void counter(int64_t Pid, std::string Name, int64_t Cycle, int64_t V);

  /// Record a flow start/finish pair member. \p Id pairs the two ends; the
  /// start lands on the sender's track, the finish on the receiver's.
  void flowStart(uint64_t Id, int64_t Pid, int64_t Tid, std::string Name,
                 int64_t Cycle);
  void flowFinish(uint64_t Id, int64_t Pid, int64_t Tid, std::string Name,
                  int64_t Cycle);

  int64_t eventCount() const { return static_cast<int64_t>(Events.size()); }
  const std::vector<CycleEvent> &events() const { return Events; }

  /// extendPhase invocations recorded (pre-coalescing) — a proxy for the
  /// number of times the simulator's accounting reached its tracing guard,
  /// which is what bench/trace_overhead multiplies by the per-guard cost
  /// to bound the tracing-disabled overhead of a run.
  int64_t intervalCount() const { return Intervals; }

  /// Total cycles recorded for (\p Pid, \p Tid) in phase \p P, including
  /// the still-open slice — the cross-check against ThreadStats buckets.
  int64_t phaseCycles(int64_t Pid, int64_t Tid, ThreadPhase P) const;

  /// Drop everything recorded.
  void clear();

  /// Export as a Chrome trace-event JSON document (same envelope as
  /// TraceEngine). `ts`/`dur` are integer cycles; deterministic byte for
  /// byte for a deterministic recording order.
  void exportJSON(std::ostream &OS) const;

  /// exportJSON to a file.
  Status writeFile(const std::string &Path) const;

private:
  /// Open coalesced slice per (pid, tid).
  struct OpenSlice {
    ThreadPhase Phase = ThreadPhase::Run;
    int64_t Begin = 0;
    int64_t End = 0;
  };

  void flushSlice(const std::pair<int64_t, int64_t> &Track,
                  const OpenSlice &S);

  std::vector<CycleEvent> Events;
  int64_t Intervals = 0;
  std::map<std::pair<int64_t, int64_t>, OpenSlice> Open;
  /// Accumulated per-phase cycles per (pid, tid), kept exact even while a
  /// slice is open.
  std::map<std::pair<int64_t, int64_t>, std::array<int64_t, NumThreadPhases>>
      PhaseTotals;
};

} // namespace npral

#endif // NPRAL_TRACE_CYCLETRACE_H
