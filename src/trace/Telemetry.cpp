//===- Telemetry.cpp ------------------------------------------------------===//

#include "trace/Telemetry.h"

#include "trace/CycleTrace.h"

#include <cassert>

using namespace npral;

TelemetryRing::TelemetryRing(size_t Capacity) {
  assert(Capacity >= 1 && "a telemetry ring needs room for one sample");
  Buf.resize(Capacity);
}

void TelemetryRing::push(TelemetrySample S) {
  Buf[Head] = std::move(S);
  Head = (Head + 1) % Buf.size();
  if (Count < Buf.size())
    ++Count;
  ++Pushed;
}

const TelemetrySample &TelemetryRing::at(size_t I) const {
  assert(I < Count && "telemetry ring index out of range");
  const size_t Oldest = (Head + Buf.size() - Count) % Buf.size();
  return Buf[(Oldest + I) % Buf.size()];
}

std::vector<TelemetrySample> TelemetryRing::snapshot() const {
  std::vector<TelemetrySample> Out;
  Out.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Out.push_back(at(I));
  return Out;
}

void TelemetryRing::clear() {
  for (TelemetrySample &S : Buf)
    S = TelemetrySample();
  Head = 0;
  Count = 0;
  Pushed = 0;
}

TelemetrySampler::TelemetrySampler(int64_t PeriodCycles, CycleTrace *Trace,
                                   TelemetryRing *Ring)
    : Period(PeriodCycles), Next(PeriodCycles), Trace(Trace), Ring(Ring) {
  assert(PeriodCycles >= 1 && "sample period must be at least one cycle");
}

void TelemetrySampler::beginSample(int64_t Cycle) {
  assert(!InSample && "beginSample with a sample already open");
  InSample = true;
  Pending = TelemetrySample();
  Pending.Cycle = Cycle;
}

void TelemetrySampler::value(int64_t Pid, const std::string &Name, int64_t V) {
  assert(InSample && "value() outside beginSample/endSample");
  if (Trace)
    Trace->counter(Pid, Name, Pending.Cycle, V);
  Pending.Values.emplace_back(Name, V);
}

void TelemetrySampler::endSample(int64_t ReachedCycle) {
  assert(InSample && "endSample without beginSample");
  InSample = false;
  if (Ring)
    Ring->push(std::move(Pending));
  Pending = TelemetrySample();
  // First period multiple strictly after what the simulation has reached:
  // a driver that stepped over several periods takes one sample, not a
  // back-filled burst of identical ones.
  if (ReachedCycle >= Next)
    Next += ((ReachedCycle - Next) / Period + 1) * Period;
}
