//===- DecisionLog.h - Structured allocation decision records ---*- C++ -*-===//
///
/// \file
/// The decision-log half of the observability layer: structured records of
/// *why* the register allocators did what they did, filled in by
/// InterAllocator (one record per Fig. 8 reduction step and per PR-3
/// rebalancing exchange) and IntraThreadAllocator (recolor attempts, NSR
/// exclusions, block splits, fragment fallbacks), and rendered as the
/// human-readable report behind `npralc alloc --explain`.
///
/// A log belongs to exactly one allocateInterThread call and is written
/// single-threaded (the allocator itself is sequential); concurrent batch
/// jobs each pass their own log or none. This header deliberately depends
/// only on npral_support so the trace library sits below the allocator in
/// the link order.
///
/// The core invariant — pinned by DecisionLogTest — is that each reduction
/// step records the move-cost bids of every candidate the allocator
/// actually priced, and the chosen delta equals the minimum over those
/// bids, i.e. the log is a faithful transcript of the greedy argmin, not a
/// reconstruction.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_DECISIONLOG_H
#define NPRAL_TRACE_DECISIONLOG_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace npral {

/// One priced candidate inside a reduction step: either "reduce thread T's
/// PR by 1" or "reduce every max-SR thread's SR by 1" (the single
/// collective SR bid, Thread == -1).
struct ReductionBid {
  enum Kind { ReducePR, ReduceSharedRegs };
  Kind K = ReducePR;
  /// Victim thread for ReducePR; -1 for the collective SR bid.
  int Thread = -1;
  /// Weighted move-cost increase if this candidate is taken.
  int64_t Delta = 0;
};

/// One iteration of the Fig. 8 greedy reduction loop.
struct ReductionStep {
  enum Choice { ChosePR, ChoseSharedRegs, ChoseSweepFallback };
  int StepIndex = 0;
  int RequirementBefore = 0;
  int RequirementAfter = 0;
  /// Every feasible candidate priced this step, in scan order.
  std::vector<ReductionBid> Bids;
  Choice Chosen = ChosePR;
  /// Victim thread when Chosen == ChosePR; -1 otherwise.
  int VictimThread = -1;
  /// Delta of the winning bid (0 for the sweep fallback).
  int64_t ChosenDelta = 0;
  /// Budgets after applying the step.
  std::vector<int> PRAfter;
  std::vector<int> SRAfter;
};

/// One applied step of the profile-guided rebalancing pass.
struct RebalanceStep {
  enum Kind { RaisePR, WidenSharedRegs, ExchangePR };
  Kind K = RaisePR;
  /// Thread whose PR was raised (RaisePR/ExchangePR); -1 for WidenSharedRegs.
  int UpThread = -1;
  /// Thread whose PR was lowered (ExchangePR only).
  int DownThread = -1;
  /// Strict weighted-cost saving of the step.
  int64_t Saving = 0;
  std::vector<int> PRAfter;
  std::vector<int> SRAfter;
};

/// One noteworthy event inside an intra-thread allocation attempt.
struct IntraEvent {
  enum Kind {
    /// A recolor attempt for a (PR, SR) configuration, with the strategy
    /// that settled it ("bounds", "direct", "split", "fragment", or
    /// "infeasible").
    Recolor,
    /// A boundary node excluded from conflicting NSRs (Fig. 12).
    ExcludeNSR,
    /// An internal node split at block granularity (Fig. 13).
    BlockSplit,
    /// Greedy splitting gave up and the Lemma 1 fragment allocator ran.
    FragmentFallback,
  };
  Kind K = Recolor;
  /// Thread index inside the multi-thread program; -1 when the allocator
  /// runs standalone.
  int Thread = -1;
  /// Configuration under which the event happened.
  int PR = 0;
  int SR = 0;
  /// Free-form but deterministic detail, e.g. "lr7 excluded from 2 NSRs".
  std::string Detail;
};

/// The full decision transcript of one allocateInterThread call.
class AllocationDecisionLog {
public:
  int Nthd = 0;
  int Nreg = 0;
  /// Move-free upper bounds the reduction started from (Fig. 8 lines 1-4).
  std::vector<int> InitialPR;
  std::vector<int> InitialSR;

  std::vector<ReductionStep> Reductions;
  std::vector<RebalanceStep> Rebalances;
  std::vector<IntraEvent> IntraEvents;

  /// Outcome snapshot, filled after convergence.
  bool Success = false;
  std::string FailReason;
  std::vector<int> FinalPR;
  std::vector<int> FinalSR;
  int SGR = 0;
  int RegistersUsed = 0;
  int64_t TotalWeightedCost = 0;

  void clear() { *this = AllocationDecisionLog(); }

  /// The human-readable report behind `npralc alloc --explain`: one block
  /// per reduction step with every bid and the chosen move, the rebalance
  /// trail, intra-thread events, and the final layout.
  void renderExplain(std::ostream &OS) const;
};

} // namespace npral

#endif // NPRAL_TRACE_DECISIONLOG_H
