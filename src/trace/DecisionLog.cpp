//===- DecisionLog.cpp ----------------------------------------------------===//

#include "trace/DecisionLog.h"

using namespace npral;

namespace {

void printVec(std::ostream &OS, const std::vector<int> &V) {
  OS << '[';
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      OS << ' ';
    OS << V[I];
  }
  OS << ']';
}

void printBudgets(std::ostream &OS, const std::vector<int> &PR,
                  const std::vector<int> &SR) {
  OS << "PR=";
  printVec(OS, PR);
  OS << " SR=";
  printVec(OS, SR);
}

const char *intraKindName(IntraEvent::Kind K) {
  switch (K) {
  case IntraEvent::Recolor:
    return "recolor";
  case IntraEvent::ExcludeNSR:
    return "exclude-nsr";
  case IntraEvent::BlockSplit:
    return "block-split";
  case IntraEvent::FragmentFallback:
    return "fragment-fallback";
  }
  return "?";
}

} // namespace

void AllocationDecisionLog::renderExplain(std::ostream &OS) const {
  OS << "allocation explain: " << Nthd << " threads, Nreg=" << Nreg << "\n";
  OS << "initial: ";
  printBudgets(OS, InitialPR, InitialSR);
  OS << "\n";

  for (const ReductionStep &S : Reductions) {
    OS << "step " << S.StepIndex << ": requirement " << S.RequirementBefore
       << " -> " << S.RequirementAfter << "\n";
    if (!S.Bids.empty()) {
      OS << "  bids:";
      for (const ReductionBid &B : S.Bids) {
        if (B.K == ReductionBid::ReducePR)
          OS << " thread" << B.Thread << ".PR-1 delta=" << B.Delta;
        else
          OS << " all-max-SR-1 delta=" << B.Delta;
      }
      OS << "\n";
    }
    OS << "  chose: ";
    switch (S.Chosen) {
    case ReductionStep::ChosePR:
      OS << "reduce PR of thread " << S.VictimThread
         << " (delta=" << S.ChosenDelta << ")";
      break;
    case ReductionStep::ChoseSharedRegs:
      OS << "reduce SR of all max-SR threads (delta=" << S.ChosenDelta << ")";
      break;
    case ReductionStep::ChoseSweepFallback:
      OS << "no single step feasible; shared-window sweep fallback";
      break;
    }
    OS << "; ";
    printBudgets(OS, S.PRAfter, S.SRAfter);
    OS << "\n";
  }

  for (const RebalanceStep &S : Rebalances) {
    OS << "rebalance: ";
    switch (S.K) {
    case RebalanceStep::RaisePR:
      OS << "raise PR of thread " << S.UpThread;
      break;
    case RebalanceStep::WidenSharedRegs:
      OS << "widen shared window for all threads";
      break;
    case RebalanceStep::ExchangePR:
      OS << "exchange PR: thread " << S.DownThread << " -> thread "
         << S.UpThread;
      break;
    }
    OS << " (saving=" << S.Saving << "); ";
    printBudgets(OS, S.PRAfter, S.SRAfter);
    OS << "\n";
  }

  for (const IntraEvent &E : IntraEvents) {
    OS << "intra";
    if (E.Thread >= 0)
      OS << " thread" << E.Thread;
    OS << " (PR=" << E.PR << ",SR=" << E.SR << "): " << intraKindName(E.K);
    if (!E.Detail.empty())
      OS << " " << E.Detail;
    OS << "\n";
  }

  if (Success) {
    OS << "final: ";
    printBudgets(OS, FinalPR, FinalSR);
    OS << ", SGR=" << SGR << ", registers used " << RegistersUsed
       << ", weighted cost " << TotalWeightedCost << "\n";
  } else {
    OS << "failed: " << FailReason << "\n";
  }
}
