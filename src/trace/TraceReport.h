//===- TraceReport.h - Offline trace summarisation --------------*- C++ -*-===//
///
/// \file
/// Turns a parsed Chrome trace (TraceValidator's ParsedTraceEvent stream)
/// into a human-readable summary: per-track slice breakdowns rendered as
/// bars, counter tracks rendered as sparklines, and flow-event latency
/// percentiles. This is the analysis half of `npralc report` — the CLI
/// loads a trace file, validates it, and hands the events here.
///
/// The report is computed once (build) and rendered on demand as plain
/// text or as a single self-contained HTML page (inline CSS, no external
/// assets) so a CI artifact can be opened anywhere.
///
/// All aggregation is purely a function of the event stream, so reports of
/// the virtual-time traces (docs/observability.md) are deterministic and
/// diffable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_TRACEREPORT_H
#define NPRAL_TRACE_TRACEREPORT_H

#include "trace/TraceValidator.h"

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace npral {

/// Aggregated durations of one slice name on one (pid, tid) track.
struct SliceBucket {
  int64_t Count = 0;
  double TotalDur = 0;
  /// Individual durations, kept for percentile queries (sorted by build).
  std::vector<double> Durations;

  double p(double Q) const; ///< Nearest-rank percentile over Durations.
};

/// One (pid, tid) timeline track: every 'X' slice plus balanced 'B'/'E'
/// pairs, grouped by slice name.
struct TrackReport {
  int64_t Pid = 0;
  int64_t Tid = 0;
  double TotalDur = 0; ///< Sum over all buckets (the 100% of the bars).
  std::map<std::string, SliceBucket> ByName;
};

/// One counter series: 'C' events with the same (pid, name).
struct CounterReport {
  int64_t Pid = 0;
  std::string Name;
  std::vector<double> Values; ///< In timestamp order.
  double Min = 0, Max = 0, Last = 0;
};

/// Latencies of matched 's'/'f' flow pairs sharing a name.
struct FlowReport {
  std::string Name;
  std::vector<double> Latencies; ///< finish.ts - start.ts, sorted.

  double p(double Q) const; ///< Nearest-rank percentile over Latencies.
};

/// The computed summary. Orderings are map-stable (pid, tid, name), so
/// renders are byte-deterministic for a given event stream.
class TraceReport {
public:
  /// Aggregate \p Events (document order; assumed already validated —
  /// unmatched B/E or flow events are skipped, not diagnosed).
  static TraceReport build(const std::vector<ParsedTraceEvent> &Events);

  const std::vector<TrackReport> &tracks() const { return Tracks; }
  const std::vector<CounterReport> &counters() const { return Counters; }
  const std::vector<FlowReport> &flows() const { return Flows; }
  int64_t eventCount() const { return NumEvents; }

  /// Plain-text report: one section per track with percentage bars, one
  /// sparkline per counter series, one percentile line per flow name.
  void renderText(std::ostream &OS) const;

  /// Single-file HTML with the same content (inline CSS bars).
  void renderHTML(std::ostream &OS) const;

private:
  std::vector<TrackReport> Tracks;
  std::vector<CounterReport> Counters;
  std::vector<FlowReport> Flows;
  int64_t NumEvents = 0;
};

} // namespace npral

#endif // NPRAL_TRACE_TRACEREPORT_H
