//===- MetricsRegistry.cpp ------------------------------------------------===//

#include "trace/MetricsRegistry.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace npral;

void Histogram::observe(int64_t V) {
  int B = 0;
  if (V > 0) {
    uint64_t U = static_cast<uint64_t>(V);
    while (U != 0) {
      ++B;
      U >>= 1;
    }
  }
  assert(B < NumBuckets && "bucket index out of range");
  Buckets[static_cast<size_t>(B)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
  int64_t Seen = Min.load(std::memory_order_relaxed);
  while (V < Seen &&
         !Min.compare_exchange_weak(Seen, V, std::memory_order_relaxed))
    ;
  Seen = Max.load(std::memory_order_relaxed);
  while (V > Seen &&
         !Max.compare_exchange_weak(Seen, V, std::memory_order_relaxed))
    ;
}

int64_t Histogram::min() const {
  const int64_t V = Min.load(std::memory_order_relaxed);
  return V == INT64_MAX ? 0 : V;
}

int64_t Histogram::max() const {
  const int64_t V = Max.load(std::memory_order_relaxed);
  return V == INT64_MIN ? 0 : V;
}

int64_t Histogram::percentile(double Q) const {
  const int64_t N = count();
  if (N == 0)
    return 0;
  // The Q-th percentile is the value at (fractional) rank Target within
  // the sorted observations; the buckets locate it, interpolation places
  // it inside the bucket's value range, and clamping to the observed
  // min/max makes degenerate distributions exact.
  const double Target =
      std::clamp(Q, 0.0, 100.0) / 100.0 * static_cast<double>(N);
  int64_t Cum = 0;
  for (int B = 0; B < NumBuckets; ++B) {
    const int64_t InBucket = bucketCount(B);
    if (InBucket == 0)
      continue;
    if (static_cast<double>(Cum) + static_cast<double>(InBucket) >= Target) {
      // Bucket 0 holds V <= 0; bucket B >= 1 holds 2^(B-1) <= V < 2^B.
      const double Lo = B == 0 ? 0.0 : std::ldexp(1.0, B - 1);
      const double Hi = B == 0 ? 0.0 : std::ldexp(1.0, B);
      const double Frac =
          std::max(0.0, Target - static_cast<double>(Cum)) /
          static_cast<double>(InBucket);
      double V = Lo + Frac * (Hi - Lo);
      V = std::min(V, static_cast<double>(max()));
      V = std::max(V, static_cast<double>(min()));
      return static_cast<int64_t>(std::llround(V));
    }
    Cum += InBucket;
  }
  return max();
}

void Histogram::mergeFrom(const Histogram &Other) {
  if (Other.count() == 0)
    return;
  for (int B = 0; B < NumBuckets; ++B)
    if (int64_t N = Other.bucketCount(B))
      Buckets[static_cast<size_t>(B)].fetch_add(N, std::memory_order_relaxed);
  Count.fetch_add(Other.count(), std::memory_order_relaxed);
  Sum.fetch_add(Other.sum(), std::memory_order_relaxed);
  const int64_t OtherMin = Other.min();
  int64_t Seen = Min.load(std::memory_order_relaxed);
  while (OtherMin < Seen &&
         !Min.compare_exchange_weak(Seen, OtherMin, std::memory_order_relaxed))
    ;
  const int64_t OtherMax = Other.max();
  Seen = Max.load(std::memory_order_relaxed);
  while (OtherMax > Seen &&
         !Max.compare_exchange_weak(Seen, OtherMax, std::memory_order_relaxed))
    ;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

MetricsRegistry::Instrument &MetricsRegistry::get(std::string_view Name,
                                                  Instrument::Kind Kind) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Instruments.find(Name);
  if (It == Instruments.end()) {
    It = Instruments.try_emplace(std::string(Name)).first;
    It->second.K = Kind;
    if (Kind == Instrument::K_Histogram)
      It->second.H = std::make_unique<Histogram>();
  }
  assert(It->second.K == Kind && "metric re-registered as another kind");
  return It->second;
}

const MetricsRegistry::Instrument *
MetricsRegistry::find(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Instruments.find(Name);
  return It == Instruments.end() ? nullptr : &It->second;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  return get(Name, Instrument::K_Counter).C;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  return get(Name, Instrument::K_Gauge).G;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  return *get(Name, Instrument::K_Histogram).H;
}

int64_t MetricsRegistry::counterValue(std::string_view Name) const {
  const Instrument *I = find(Name);
  return I && I->K == Instrument::K_Counter ? I->C.value() : 0;
}

int64_t MetricsRegistry::gaugeValue(std::string_view Name) const {
  const Instrument *I = find(Name);
  return I && I->K == Instrument::K_Gauge ? I->G.value() : 0;
}

const Histogram *MetricsRegistry::findHistogram(std::string_view Name) const {
  const Instrument *I = find(Name);
  return I && I->K == Instrument::K_Histogram ? I->H.get() : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  // Lock ordering: Other first, then this (merge is only ever called
  // per-run-registry -> global, so the order is globally consistent).
  std::lock_guard<std::mutex> OtherLock(Other.Mutex);
  for (const auto &[Name, I] : Other.Instruments) {
    switch (I.K) {
    case Instrument::K_Counter:
      counter(Name).add(I.C.value());
      break;
    case Instrument::K_Gauge:
      gauge(Name).set(I.G.value());
      break;
    case Instrument::K_Histogram:
      histogram(Name).mergeFrom(*I.H);
      break;
    }
  }
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Instruments.clear();
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Instruments.empty();
}

void MetricsRegistry::renderText(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &[Name, I] : Instruments) {
    switch (I.K) {
    case Instrument::K_Counter:
      OS << Name << " counter " << I.C.value() << "\n";
      break;
    case Instrument::K_Gauge:
      OS << Name << " gauge " << I.G.value() << "\n";
      break;
    case Instrument::K_Histogram:
      OS << Name << " histogram count=" << I.H->count()
         << " sum=" << I.H->sum() << " min=" << I.H->min()
         << " max=" << I.H->max() << " p50=" << I.H->percentile(50)
         << " p95=" << I.H->percentile(95) << " p99=" << I.H->percentile(99)
         << "\n";
      break;
    }
  }
}

void MetricsRegistry::renderJSON(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  OS << "{\n  \"metrics\": {";
  bool First = true;
  for (const auto &[Name, I] : Instruments) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJSONString(OS, Name);
    OS << ": {\"type\": ";
    switch (I.K) {
    case Instrument::K_Counter:
      OS << "\"counter\", \"value\": " << I.C.value() << "}";
      break;
    case Instrument::K_Gauge:
      OS << "\"gauge\", \"value\": " << I.G.value() << "}";
      break;
    case Instrument::K_Histogram:
      OS << "\"histogram\", \"count\": " << I.H->count()
         << ", \"sum\": " << I.H->sum() << ", \"min\": " << I.H->min()
         << ", \"max\": " << I.H->max() << ", \"p50\": " << I.H->percentile(50)
         << ", \"p95\": " << I.H->percentile(95)
         << ", \"p99\": " << I.H->percentile(99) << "}";
      break;
    }
  }
  OS << (First ? "}" : "\n  }") << "\n}\n";
}
