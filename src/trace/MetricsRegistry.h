//===- MetricsRegistry.h - Named counters, gauges, histograms ---*- C++ -*-===//
///
/// \file
/// The metrics half of the observability layer: a registry of named
/// instruments that any subsystem can bump without plumbing a stats struct
/// through every call chain.
///
///  * Counter   — monotonically increasing int64 (events, cache hits, ns
///                of work summed across workers).
///  * Gauge     — last-set int64 (configuration, sizes, per-run results).
///  * Histogram — base-2 exponential buckets with count/sum/min/max, for
///                distributions like per-job latency.
///
/// All instruments are thread-safe: registration takes the registry mutex
/// once (returned references stay valid until clear()), updates are single
/// atomic operations. Rendering follows the DiagnosticEngine conventions:
/// stable key order (lexicographic), text and JSON that agree, JSON string
/// escaping via writeJSONString.
///
/// Metric names are dotted lowercase paths, `subsystem.detail[_unit]`,
/// e.g. `batch.stage.alloc_ns`, `sim.thread0.mem_stall_cycles`. The full
/// list is documented in docs/observability.md.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TRACE_METRICSREGISTRY_H
#define NPRAL_TRACE_METRICSREGISTRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace npral {

class Counter {
public:
  void add(int64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  void increment() { add(1); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

class Gauge {
public:
  void set(int64_t N) { Value.store(N, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Base-2 exponential histogram: bucket B counts observations V with
/// 2^(B-1) <= V < 2^B (bucket 0 counts V <= 0 and V == 1 lands in bucket
/// 1). 63 buckets cover the full non-negative int64 range.
class Histogram {
public:
  static constexpr int NumBuckets = 63;

  void observe(int64_t V);
  int64_t count() const { return Count.load(std::memory_order_relaxed); }
  int64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Min/max of observed values; 0/0 when empty.
  int64_t min() const;
  int64_t max() const;
  int64_t bucketCount(int B) const {
    return Buckets[static_cast<size_t>(B)].load(std::memory_order_relaxed);
  }

  /// Percentile estimate for \p Q in [0, 100]: cumulative walk of the
  /// buckets, linear interpolation inside the containing bucket's value
  /// range, clamped to [min(), max()] (so a single-valued distribution
  /// reports that value exactly). Deterministic for a given set of
  /// observations, which is what lets the renders be golden-pinned. 0 when
  /// empty.
  int64_t percentile(double Q) const;

  /// Fold \p Other's observations into this histogram (exact for buckets,
  /// count, sum, min, max).
  void mergeFrom(const Histogram &Other);

private:
  std::atomic<int64_t> Buckets[NumBuckets] = {};
  std::atomic<int64_t> Count{0};
  std::atomic<int64_t> Sum{0};
  std::atomic<int64_t> Min{INT64_MAX};
  std::atomic<int64_t> Max{INT64_MIN};
};

class MetricsRegistry {
public:
  /// The process-wide registry (long-running accumulation; per-run
  /// registries are plain local instances).
  static MetricsRegistry &global();

  /// Find-or-create by name. References stay valid until clear(). A name
  /// registered as one kind must not be requested as another (asserted).
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Snapshot reads for tests and stats adapters; 0 when absent.
  int64_t counterValue(std::string_view Name) const;
  int64_t gaugeValue(std::string_view Name) const;
  /// The named histogram, or null when absent (or registered as another
  /// kind). The pointer stays valid until clear().
  const Histogram *findHistogram(std::string_view Name) const;

  /// Fold every instrument of \p Other into this registry: counters add,
  /// gauges overwrite, histograms merge bucket-wise.
  void merge(const MetricsRegistry &Other);

  /// Drop all instruments (invalidates outstanding references; test-only).
  void clear();

  bool empty() const;

  /// One line per instrument, lexicographic by name:
  ///   <name> counter <value>
  ///   <name> gauge <value>
  ///   <name> histogram count=<n> sum=<s> min=<m> max=<M> p50=<v> p95=<v>
  ///   p99=<v>
  void renderText(std::ostream &OS) const;

  /// {"metrics": {"<name>": {"type": ..., ...}, ...}} with keys in the
  /// same stable order as renderText.
  void renderJSON(std::ostream &OS) const;

private:
  struct Instrument {
    enum Kind { K_Counter, K_Gauge, K_Histogram };
    Kind K = K_Counter;
    Counter C;
    Gauge G;
    std::unique_ptr<Histogram> H;
  };

  Instrument &get(std::string_view Name, Instrument::Kind Kind);
  const Instrument *find(std::string_view Name) const;

  mutable std::mutex Mutex;
  /// std::map: node stability keeps instrument references valid across
  /// inserts, heterogeneous lookup avoids allocating on the hot path, and
  /// iteration order is the stable render order for free.
  std::map<std::string, Instrument, std::less<>> Instruments;
};

} // namespace npral

#endif // NPRAL_TRACE_METRICSREGISTRY_H
