//===- TraceValidator.cpp -------------------------------------------------===//

#include "trace/TraceValidator.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <map>

using namespace npral;

namespace {

/// Minimal strict JSON reader specialized for trace documents: objects,
/// arrays, strings, and numbers (the only value kinds TraceEngine emits,
/// plus literals so foreign traces still parse). Fails fast with a
/// position-annotated message.
class TraceJSONReader {
public:
  explicit TraceJSONReader(std::string_view Text) : Text(Text) {}

  ErrorOr<std::vector<ParsedTraceEvent>> run() {
    skipWS();
    std::vector<ParsedTraceEvent> Events;
    if (peek() == '[') {
      // Chrome also accepts a bare top-level event array.
      if (Status S = parseEventArray(Events); !S.ok())
        return S;
    } else {
      if (Status S = parseTopObject(Events); !S.ok())
        return S;
    }
    skipWS();
    if (Pos != Text.size())
      return fail("trailing garbage after document");
    return Events;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  bool SawTraceEvents = false;
  /// The key most recently parsed on the current object — names the
  /// offending field in structural error messages.
  std::string CurrentKey;

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }

  void skipWS() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  Status fail(const std::string &Msg) const {
    // 1-based line; a failure at a megabyte offset is findable by line in
    // any editor, and the key says which field was being parsed.
    size_t Line = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I)
      if (Text[I] == '\n')
        ++Line;
    std::string Out = "trace JSON: " + Msg + " at line " +
                      std::to_string(Line) + ", offset " +
                      std::to_string(Pos);
    if (!CurrentKey.empty())
      Out += " (near key \"" + CurrentKey + "\")";
    return Status::error(Out);
  }

  Status expect(char C) {
    skipWS();
    if (peek() != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return Status::success();
  }

  Status parseString(std::string &Out) {
    skipWS();
    if (peek() != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\') {
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        case 'r': Out += '\r'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape digit");
          }
          // TraceEngine only emits \u00xx for control bytes; encode the
          // low byte and reject anything that would need real UTF-16.
          if (V > 0xFF)
            return fail("unsupported \\u escape beyond U+00FF");
          Out += static_cast<char>(V);
          break;
        }
        default:
          return fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(C) < 0x20) {
        return fail("raw control character in string");
      } else {
        Out += C;
      }
    }
    if (peek() != '"')
      return fail("unterminated string");
    ++Pos;
    return Status::success();
  }

  Status parseNumber(double &Out, std::string &Raw) {
    skipWS();
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected number");
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number: digit required after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number: digit required in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    Raw = std::string(Text.substr(Start, Pos - Start));
    Out = std::stod(Raw);
    return Status::success();
  }

  /// Parse any value, returning a canonical text form: strings decoded,
  /// numbers verbatim, literals verbatim, nested containers re-serialized
  /// compactly. Used for event args and skipped fields.
  Status parseValueText(std::string &Out) {
    skipWS();
    char C = peek();
    if (C == '"')
      return parseString(Out);
    if (C == '{' || C == '[') {
      char Close = C == '{' ? '}' : ']';
      Out += C;
      ++Pos;
      skipWS();
      bool First = true;
      while (peek() != Close) {
        if (!First) {
          if (Status S = expect(','); !S.ok())
            return S;
        }
        First = false;
        if (C == '{') {
          std::string Key;
          if (Status S = parseString(Key); !S.ok())
            return S;
          if (Status S = expect(':'); !S.ok())
            return S;
          Out += '"' + Key + "\":";
        }
        std::string Val;
        if (Status S = parseValueText(Val); !S.ok())
          return S;
        Out += Val;
        skipWS();
        if (peek() == ',')
          Out += ',';
      }
      ++Pos;
      Out += Close;
      return Status::success();
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out = "true";
      return Status::success();
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out = "false";
      return Status::success();
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      Out = "null";
      return Status::success();
    }
    double D;
    return parseNumber(D, Out);
  }

  Status parseTopObject(std::vector<ParsedTraceEvent> &Events) {
    if (Status S = expect('{'); !S.ok())
      return S;
    skipWS();
    bool First = true;
    while (peek() != '}') {
      if (!First) {
        if (Status S = expect(','); !S.ok())
          return S;
      }
      First = false;
      std::string Key;
      if (Status S = parseString(Key); !S.ok())
        return S;
      CurrentKey = Key;
      if (Status S = expect(':'); !S.ok())
        return S;
      if (Key == "traceEvents") {
        if (SawTraceEvents)
          return fail("duplicate traceEvents key");
        SawTraceEvents = true;
        if (Status S = parseEventArray(Events); !S.ok())
          return S;
      } else {
        std::string Skip;
        if (Status S = parseValueText(Skip); !S.ok())
          return S;
      }
      skipWS();
    }
    ++Pos;
    if (!SawTraceEvents)
      return fail("missing traceEvents array");
    return Status::success();
  }

  Status parseEventArray(std::vector<ParsedTraceEvent> &Events) {
    if (Status S = expect('['); !S.ok())
      return S;
    skipWS();
    bool First = true;
    while (peek() != ']') {
      if (!First) {
        if (Status S = expect(','); !S.ok())
          return S;
      }
      First = false;
      ParsedTraceEvent E;
      if (Status S = parseEvent(E); !S.ok())
        return S;
      Events.push_back(std::move(E));
      skipWS();
    }
    ++Pos;
    return Status::success();
  }

  Status parseEvent(ParsedTraceEvent &E) {
    if (Status S = expect('{'); !S.ok())
      return S;
    skipWS();
    bool First = true;
    bool HavePh = false, HaveName = false, HaveTs = false, HavePid = false,
         HaveTid = false;
    while (peek() != '}') {
      if (!First) {
        if (Status S = expect(','); !S.ok())
          return S;
      }
      First = false;
      std::string Key;
      if (Status S = parseString(Key); !S.ok())
        return S;
      CurrentKey = Key;
      if (Status S = expect(':'); !S.ok())
        return S;
      if (Key == "ph") {
        std::string V;
        if (Status S = parseString(V); !S.ok())
          return S;
        if (V.size() != 1)
          return fail("ph must be a single character");
        E.Ph = V[0];
        HavePh = true;
      } else if (Key == "name") {
        if (Status S = parseString(E.Name); !S.ok())
          return S;
        HaveName = true;
      } else if (Key == "cat") {
        if (Status S = parseString(E.Cat); !S.ok())
          return S;
      } else if (Key == "ts") {
        std::string Raw;
        if (Status S = parseNumber(E.Ts, Raw); !S.ok())
          return S;
        HaveTs = true;
      } else if (Key == "pid" || Key == "tid" || Key == "id") {
        double V;
        std::string Raw;
        if (Status S = parseNumber(V, Raw); !S.ok())
          return S;
        if (Raw.find('.') != std::string::npos ||
            Raw.find('e') != std::string::npos ||
            Raw.find('E') != std::string::npos)
          return fail(Key + " must be an integer");
        if (Key == "pid") {
          E.Pid = static_cast<int64_t>(V);
          HavePid = true;
        } else if (Key == "tid") {
          E.Tid = static_cast<int64_t>(V);
          HaveTid = true;
        } else {
          if (V < 0)
            return fail("id must be non-negative");
          E.Id = static_cast<uint64_t>(V);
          E.HasId = true;
        }
      } else if (Key == "dur") {
        std::string Raw;
        if (Status S = parseNumber(E.Dur, Raw); !S.ok())
          return S;
      } else if (Key == "args") {
        if (Status S = parseArgs(E.Args); !S.ok())
          return S;
      } else {
        // "s" (instant scope) and any foreign field: parse, don't keep.
        std::string Skip;
        if (Status S = parseValueText(Skip); !S.ok())
          return S;
      }
      skipWS();
    }
    ++Pos;
    CurrentKey.clear();
    if (!HavePh)
      return fail("event missing ph");
    if (!HaveName)
      return fail("event missing name");
    if (!HaveTs)
      return fail("event missing ts");
    if (!HavePid || !HaveTid)
      return fail("event missing pid/tid");
    return Status::success();
  }

  Status parseArgs(std::vector<std::pair<std::string, std::string>> &Args) {
    if (Status S = expect('{'); !S.ok())
      return S;
    skipWS();
    bool First = true;
    while (peek() != '}') {
      if (!First) {
        if (Status S = expect(','); !S.ok())
          return S;
      }
      First = false;
      std::string Key, Val;
      if (Status S = parseString(Key); !S.ok())
        return S;
      if (Status S = expect(':'); !S.ok())
        return S;
      if (Status S = parseValueText(Val); !S.ok())
        return S;
      Args.emplace_back(std::move(Key), std::move(Val));
      skipWS();
    }
    ++Pos;
    return Status::success();
  }
};

Status checkSemantics(const std::vector<ParsedTraceEvent> &Events) {
  // Per-(pid, tid) track state: open B names (for balance + nesting) and
  // the previous timestamp (for monotonicity).
  struct Track {
    std::vector<std::string> OpenSpans;
    double LastTs = -1;
    bool HasLast = false;
  };
  std::map<std::pair<int64_t, int64_t>, Track> Tracks;
  // Counter series are ordered per (pid, name) — a counter plot that goes
  // backwards in time is as corrupt as a track that does.
  std::map<std::pair<int64_t, std::string>, double> CounterLastTs;
  // Open flows by id: 's' opens, 'f' closes at a ts no earlier than the
  // start. A flow left open at end of document is an error (our emitters
  // always deliver what they send).
  struct OpenFlow {
    double StartTs = 0;
    std::string Name;
  };
  std::map<uint64_t, OpenFlow> OpenFlows;

  for (size_t I = 0; I < Events.size(); ++I) {
    const ParsedTraceEvent &E = Events[I];
    const std::string Where = "event " + std::to_string(I) + " ('" + E.Name +
                              "' on tid " + std::to_string(E.Tid) + ")";
    if (E.Ph != 'B' && E.Ph != 'E' && E.Ph != 'X' && E.Ph != 'i' &&
        E.Ph != 'C' && E.Ph != 's' && E.Ph != 'f')
      return Status::error(Where + ": invalid phase '" +
                           std::string(1, E.Ph) + "'");
    if (E.Ph == 'C') {
      if (E.Args.empty())
        return Status::error(Where + ": counter event without args");
      auto It = CounterLastTs.find({E.Pid, E.Name});
      if (It != CounterLastTs.end() && E.Ts < It->second)
        return Status::error(Where + ": ts goes backwards on its counter "
                                     "series");
      CounterLastTs[{E.Pid, E.Name}] = E.Ts;
      continue;
    }
    if (E.Ph == 's' || E.Ph == 'f') {
      if (!E.HasId)
        return Status::error(Where + ": flow event without an id");
      if (E.Ph == 's') {
        if (!OpenFlows.try_emplace(E.Id, OpenFlow{E.Ts, E.Name}).second)
          return Status::error(Where + ": flow id " + std::to_string(E.Id) +
                               " started twice");
      } else {
        auto It = OpenFlows.find(E.Id);
        if (It == OpenFlows.end())
          return Status::error(Where + ": flow finish with no open start "
                                       "for id " + std::to_string(E.Id));
        if (E.Ts < It->second.StartTs)
          return Status::error(Where + ": flow finishes before it starts");
        OpenFlows.erase(It);
      }
      continue;
    }
    Track &T = Tracks[{E.Pid, E.Tid}];
    // X events sort by start time within nesting; only B/E/i must be
    // non-decreasing along the track.
    if (E.Ph != 'X') {
      if (T.HasLast && E.Ts < T.LastTs)
        return Status::error(Where + ": ts goes backwards on its track");
      T.LastTs = E.Ts;
      T.HasLast = true;
    }
    if (E.Ph == 'B') {
      T.OpenSpans.push_back(E.Name);
    } else if (E.Ph == 'E') {
      if (T.OpenSpans.empty())
        return Status::error(Where + ": end event with no open span");
      if (T.OpenSpans.back() != E.Name)
        return Status::error(Where + ": end event name mismatch (open span '" +
                             T.OpenSpans.back() + "')");
      T.OpenSpans.pop_back();
    }
  }
  for (const auto &[Id, T] : Tracks)
    if (!T.OpenSpans.empty())
      return Status::error("unbalanced trace: span '" + T.OpenSpans.back() +
                           "' on tid " + std::to_string(Id.second) +
                           " never ends");
  if (!OpenFlows.empty()) {
    const auto &[Id, F] = *OpenFlows.begin();
    return Status::error("unbalanced trace: flow '" + F.Name + "' (id " +
                         std::to_string(Id) + ") never finishes");
  }
  return Status::success();
}

} // namespace

std::string ParsedTraceEvent::contentKey() const {
  std::string Key;
  Key += Ph;
  Key += '|';
  Key += Cat;
  Key += '|';
  Key += Name;
  std::vector<std::pair<std::string, std::string>> Sorted = Args;
  std::sort(Sorted.begin(), Sorted.end());
  for (const auto &[K, V] : Sorted) {
    Key += '|';
    Key += K;
    Key += '=';
    Key += V;
  }
  return Key;
}

ErrorOr<std::vector<ParsedTraceEvent>>
npral::parseChromeTrace(std::string_view JSON) {
  TraceJSONReader Reader(JSON);
  ErrorOr<std::vector<ParsedTraceEvent>> Events = Reader.run();
  if (!Events.ok())
    return Events;
  if (Status S = checkSemantics(*Events); !S.ok())
    return S;
  return Events;
}

Status npral::validateChromeTrace(std::string_view JSON) {
  ErrorOr<std::vector<ParsedTraceEvent>> Events = parseChromeTrace(JSON);
  return Events.ok() ? Status::success() : Events.status();
}
