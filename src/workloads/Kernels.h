//===- Kernels.h - Individual benchmark builders (internal) -----*- C++ -*-===//
///
/// \file
/// Internal interface between the workload registry and the per-kernel
/// builders. Each builder produces the kernel instantiated for one memory
/// layout. Not part of the public API; include Workload.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_WORKLOADS_KERNELS_H
#define NPRAL_WORKLOADS_KERNELS_H

#include "workloads/Workload.h"

namespace npral {
namespace kernels {

/// Assemble \p AsmText (one `.thread` section) and package it with entry
/// values and input data. Fatal on assembly errors — kernel sources are
/// compiled into the binary, so a parse failure is a build bug.
Workload fromAsm(const std::string &Name, const std::string &AsmText,
                 std::vector<uint32_t> EntryValues, Workload Partial);

/// Deterministic input packet data for a kernel instance.
std::vector<uint32_t> makeInputData(const std::string &Name, int Slot,
                                    size_t Words);

// CommBench-derived kernels.
Workload buildFrag(const ThreadMemLayout &L, int Slot);
Workload buildDrr(const ThreadMemLayout &L, int Slot);
Workload buildCast(const ThreadMemLayout &L, int Slot);
Workload buildFir2dim(const ThreadMemLayout &L, int Slot);

// NetBench-derived kernels.
Workload buildMd5(const ThreadMemLayout &L, int Slot);
Workload buildCrc(const ThreadMemLayout &L, int Slot);
Workload buildUrl(const ThreadMemLayout &L, int Slot);

// Intel example code.
Workload buildL2l3fwdRx(const ThreadMemLayout &L, int Slot);
Workload buildL2l3fwdTx(const ThreadMemLayout &L, int Slot);

// WRAPS scheduler.
Workload buildWrapsRx(const ThreadMemLayout &L, int Slot);
Workload buildWrapsTx(const ThreadMemLayout &L, int Slot);

} // namespace kernels
} // namespace npral

#endif // NPRAL_WORKLOADS_KERNELS_H
