//===- Harness.h - End-to-end experiment harness ----------------*- C++ -*-===//
///
/// \file
/// Glue used by the benches, examples and integration tests: build a
/// 4-thread scenario from workload names, allocate it with either the
/// paper's inter-thread allocator or the spilling baseline, simulate, and
/// collect per-thread metrics plus output hashes for semantic-equivalence
/// checks.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_WORKLOADS_HARNESS_H
#define NPRAL_WORKLOADS_HARNESS_H

#include "alloc/InterAllocator.h"
#include "baseline/ChaitinAllocator.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include <array>
#include <string>
#include <vector>

namespace npral {

/// One ARA scenario: four kernels bound to the four thread slots.
struct Scenario {
  std::string Name;
  std::array<std::string, 4> Kernels;
  /// Thread indices the paper calls performance critical (for reporting).
  std::vector<int> CriticalThreads;
};

/// The paper's three Table-3 scenarios.
const std::vector<Scenario> &getAraScenarios();

/// Per-thread metrics from one simulated run.
struct ThreadRunMetrics {
  std::string Kernel;
  double CyclesPerIter = 0;
  int64_t Iterations = 0;
  int64_t InstrsExecuted = 0;
  int64_t CtxEvents = 0;
  int64_t MemOps = 0;
  uint64_t OutputHash = 0;
};

struct ScenarioRun {
  bool Success = false;
  std::string FailReason;
  int64_t TotalCycles = 0;
  std::vector<ThreadRunMetrics> Threads;
};

/// Instantiate the four workloads of \p S (slot = thread index). Fatal on
/// unknown kernels (scenarios are compiled in).
std::vector<Workload> buildScenarioWorkloads(const Scenario &S);

/// Simulate \p MTP with the memory/entry setup of \p Workloads. \p MTP may
/// be the virtual programs themselves (reference mode) or any allocated
/// rewrite of them. \p Observer, when non-null, receives execution events
/// (profile collection runs this way over the virtual programs).
ScenarioRun simulateWithWorkloads(const std::vector<Workload> &Workloads,
                                  const MultiThreadProgram &MTP,
                                  const SimConfig &Config,
                                  SimObserver *Observer = nullptr);

/// Bundle the workloads' virtual programs into a MultiThreadProgram.
MultiThreadProgram toMultiThreadProgram(const std::vector<Workload> &Workloads,
                                        const std::string &Name);

/// Allocate every thread with the spilling baseline (fixed \p RegsPerThread
/// partition) and materialise the physical program.
struct BaselineAllocationOutcome {
  bool Success = false;
  std::string FailReason;
  MultiThreadProgram Physical;
  std::vector<ChaitinResult> PerThread;
};
BaselineAllocationOutcome allocateScenarioBaseline(
    const std::vector<Workload> &Workloads, int RegsPerThread);

/// Default simulation configuration for the paper experiments (steady-state
/// timing: threads keep running until every thread reaches the target).
SimConfig defaultExperimentConfig();

/// Configuration for semantic-equivalence runs: every thread halts exactly
/// at its target iteration, making the final memory image independent of
/// the thread interleaving (and therefore comparable across allocators).
SimConfig equivalenceConfig();

} // namespace npral

#endif // NPRAL_WORKLOADS_HARNESS_H
