//===- Workload.h - Benchmark kernels ---------------------------*- C++ -*-===//
///
/// \file
/// The benchmark suite. The paper evaluates 11 kernels drawn from CommBench,
/// NetBench, Intel example code and the WRAPS scheduler; the originals were
/// rewritten by the authors in IXP-C/microcode, which we do not have. Each
/// kernel here is reconstructed in NPRAL assembly (or via IRBuilder for the
/// unrolled md5 transform) to match the *register-allocation signature* the
/// paper describes: md5 and wraps are register hungry (spill under a fixed
/// 32-register partition), fir2dim/frag/l2l3fwd are moderate, roughly 10 %
/// of instructions cause context switches, and boundary pressure sits well
/// below total pressure so shared registers have room to work.
/// `src/workloads/README.md` documents each reconstruction.
///
/// Memory layout (word addresses), per thread slot t in [0, 4):
///   IN    = 0x10000*(t+1) + 0x0000   input packets / tables
///   OUT   = 0x10000*(t+1) + 0x8000   kernel output (checked for
///                                    equivalence between allocators)
///   SPILL = 0x10000*(t+1) + 0xF000   baseline spill slots
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_WORKLOADS_WORKLOAD_H
#define NPRAL_WORKLOADS_WORKLOAD_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace npral {

/// Word-address layout helpers.
struct ThreadMemLayout {
  uint32_t InBase = 0;
  uint32_t OutBase = 0;
  uint32_t SpillBase = 0;

  static ThreadMemLayout forSlot(int Slot) {
    ThreadMemLayout L;
    uint32_t Base = 0x10000u * (static_cast<uint32_t>(Slot) + 1);
    L.InBase = Base;
    L.OutBase = Base + 0x8000u;
    L.SpillBase = Base + 0xF000u;
    return L;
  }
};

/// A benchmark kernel instantiated for one thread slot.
struct Workload {
  std::string Name;
  Program Code;
  /// Initial values for Code.EntryLiveRegs, in order.
  std::vector<uint32_t> EntryValues;
  /// Memory regions to initialise before simulation.
  struct MemRegion {
    uint32_t Base;
    std::vector<uint32_t> Words;
  };
  std::vector<MemRegion> InitMemory;
  /// Output region compared across allocators for semantic equivalence.
  uint32_t OutputBase = 0;
  uint32_t OutputLen = 0;
  /// Spill area for the baseline allocator.
  uint32_t SpillBase = 0;
};

/// Names of the 11 paper benchmarks, in Table 1 order.
const std::vector<std::string> &getWorkloadNames();

/// Instantiate benchmark \p Name for thread slot \p Slot (0..3). Slot only
/// shifts the memory layout; the code is identical across slots. Fails on
/// an unknown name.
ErrorOr<Workload> buildWorkload(const std::string &Name, int Slot);

} // namespace npral

#endif // NPRAL_WORKLOADS_WORKLOAD_H
