//===- ProgramGenerator.h - Random programs for property tests --*- C++ -*-===//
///
/// \file
/// Generates random but well-formed, terminating programs: structured CFGs
/// (sequences, diamonds, loops with bounded trip counts), definite
/// initialisation, context switches sprinkled at a configurable rate, and a
/// store trail so that semantic equivalence between the original program
/// and any allocated rewrite is observable through memory.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_WORKLOADS_PROGRAMGENERATOR_H
#define NPRAL_WORKLOADS_PROGRAMGENERATOR_H

#include "ir/Program.h"
#include "support/Random.h"

#include <cstdint>

namespace npral {

/// Workload flavour of a generated program, for emulating heterogeneous
/// per-engine thread mixes (grid placement experiments). Generic draws the
/// exact same random stream as before the knob existed, so default-config
/// seed corpora (differential tests, allocation goldens) are unchanged.
/// The other kinds skew the generator toward a kernel family's
/// register-allocation signature:
///  * Checksum — ALU mix dominated by xor/shift/add (CRC-style folding);
///  * Crypto   — compute-bound: halved ctx rate, widened long-lived pool
///               (round state kept in registers);
///  * Forward  — memory-bound: ctx rate multiplied (header loads, table
///               lookups, packet writes dominate);
///  * Sched    — branch-heavy: more ifs and loops per instruction.
enum class ProgramKind { Generic, Checksum, Crypto, Forward, Sched };

struct GeneratorConfig {
  /// Workload flavour; Generic leaves every seed stream untouched.
  ProgramKind Kind = ProgramKind::Generic;
  /// Rough number of instructions to emit.
  int TargetInstructions = 80;
  /// Number of long-lived registers created up front.
  int NumLongLived = 8;
  /// Per mille of instructions that are loads/stores/ctx.
  int CtxRatePerMille = 120;
  /// Maximum structured-control nesting.
  int MaxDepth = 3;
  /// When positive, lower bound on the register pressure the program
  /// sustains: the entry-initialised pool is widened to at least this many
  /// registers, all of them kept live to the store trail at the end. Values
  /// above 32/64 force multi-word live sets and dense interference rows
  /// (the word-parallel analysis paths). 0 = leave the pool at
  /// NumLongLived; seed streams are unchanged in that case.
  int PressureTarget = 0;
  /// When non-negative, cap on *loop* nesting specifically (MaxDepth still
  /// bounds ifs and loops together); 0 generates loop-free bodies. A seed's
  /// rejected loop rolls fall back to plain ALU emission. -1 = no extra
  /// cap; seed streams are unchanged in that case.
  int MaxLoopNest = -1;
  /// Memory region the program may touch (word addresses).
  uint32_t MemBase = 0x1000;
  uint32_t MemLen = 256;
  /// Output region written by the store trail.
  uint32_t OutBase = 0x2000;
  uint32_t OutLen = 64;
};

/// Generate a program from \p Seed. The result verifies, never reads an
/// undefined register, terminates (finite loops + final halt), and executes
/// at least one `loopend`.
Program generateRandomProgram(uint64_t Seed, const GeneratorConfig &Config);

} // namespace npral

#endif // NPRAL_WORKLOADS_PROGRAMGENERATOR_H
