//===- ProgramGenerator.h - Random programs for property tests --*- C++ -*-===//
///
/// \file
/// Generates random but well-formed, terminating programs: structured CFGs
/// (sequences, diamonds, loops with bounded trip counts), definite
/// initialisation, context switches sprinkled at a configurable rate, and a
/// store trail so that semantic equivalence between the original program
/// and any allocated rewrite is observable through memory.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_WORKLOADS_PROGRAMGENERATOR_H
#define NPRAL_WORKLOADS_PROGRAMGENERATOR_H

#include "ir/Program.h"
#include "support/Random.h"

#include <cstdint>

namespace npral {

struct GeneratorConfig {
  /// Rough number of instructions to emit.
  int TargetInstructions = 80;
  /// Number of long-lived registers created up front.
  int NumLongLived = 8;
  /// Per mille of instructions that are loads/stores/ctx.
  int CtxRatePerMille = 120;
  /// Maximum structured-control nesting.
  int MaxDepth = 3;
  /// Memory region the program may touch (word addresses).
  uint32_t MemBase = 0x1000;
  uint32_t MemLen = 256;
  /// Output region written by the store trail.
  uint32_t OutBase = 0x2000;
  uint32_t OutLen = 64;
};

/// Generate a program from \p Seed. The result verifies, never reads an
/// undefined register, terminates (finite loops + final halt), and executes
/// at least one `loopend`.
Program generateRandomProgram(uint64_t Seed, const GeneratorConfig &Config);

} // namespace npral

#endif // NPRAL_WORKLOADS_PROGRAMGENERATOR_H
