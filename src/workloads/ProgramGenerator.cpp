//===- ProgramGenerator.cpp -----------------------------------------------===//

#include "workloads/ProgramGenerator.h"

#include "ir/IRBuilder.h"
#include "ir/IRVerifier.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <vector>

using namespace npral;

namespace {

/// Per-kind parameter derivation. Everything here is computed without
/// consuming randomness, and the Generic row reproduces the pre-Kind
/// constants exactly — that is what keeps default seed streams stable.
struct KindProfile {
  int CtxRatePerMille;
  int ExtraLongLived;
  int IfWeight;   ///< dice band width for emitIf (Generic: 60)
  int LoopWeight; ///< dice band width for emitLoop (Generic: 50)
  const Opcode *Binary;    ///< 6-entry three-address opcode table
  const Opcode *BinaryImm; ///< 5-entry immediate opcode table
};

const Opcode GenericBinary[] = {Opcode::Add, Opcode::Sub, Opcode::And,
                                Opcode::Or,  Opcode::Xor, Opcode::Mul};
const Opcode GenericBinaryImm[] = {Opcode::AddI, Opcode::XorI, Opcode::AndI,
                                   Opcode::ShlI, Opcode::ShrI};
// CRC/checksum folding: xor-and-shift dominated, no multiplies.
const Opcode ChecksumBinary[] = {Opcode::Xor, Opcode::Add, Opcode::Xor,
                                 Opcode::Shr, Opcode::Xor, Opcode::Add};
const Opcode ChecksumBinaryImm[] = {Opcode::XorI, Opcode::ShrI, Opcode::ShlI,
                                    Opcode::XorI, Opcode::AddI};

KindProfile deriveKindProfile(const GeneratorConfig &Config) {
  const int Rate = Config.CtxRatePerMille;
  switch (Config.Kind) {
  case ProgramKind::Generic:
    return {Rate, 0, 60, 50, GenericBinary, GenericBinaryImm};
  case ProgramKind::Checksum:
    return {Rate, 0, 60, 50, ChecksumBinary, ChecksumBinaryImm};
  case ProgramKind::Crypto:
    return {Rate / 2, 8, 60, 50, GenericBinary, GenericBinaryImm};
  case ProgramKind::Forward:
    return {std::min(400, Rate * 5 / 2), 0, 60, 50, GenericBinary,
            GenericBinaryImm};
  case ProgramKind::Sched:
    return {Rate, 0, 160, 90, GenericBinary, GenericBinaryImm};
  }
  return {Rate, 0, 60, 50, GenericBinary, GenericBinaryImm};
}

class GeneratorImpl {
public:
  GeneratorImpl(uint64_t Seed, const GeneratorConfig &Config)
      : Config(Config), Kind(deriveKindProfile(Config)), R(Seed), B(P) {}

  Program generate();

private:
  const GeneratorConfig &Config;
  KindProfile Kind;
  Rng R;
  Program P;
  IRBuilder B;
  std::vector<Reg> Pool; ///< General registers, all defined at entry.
  Reg InPtr = NoReg;
  Reg OutPtr = NoReg;
  int Budget = 0;
  int StoreCursor = 0;
  int LoopNest = 0;

  Reg pick() { return Pool[R.nextBelow(Pool.size())]; }

  void emitAlu() {
    Reg Def = pick();
    const Opcode *Binary = Kind.Binary;
    const Opcode *BinaryImm = Kind.BinaryImm;
    switch (R.nextBelow(4)) {
    case 0:
      B.imm(Def, static_cast<int64_t>(R.nextBelow(1 << 16)));
      break;
    case 1:
      B.unop(R.nextChance(1, 2) ? Opcode::Not : Opcode::Neg, Def, pick());
      break;
    case 2:
      B.binopImm(BinaryImm[R.nextBelow(5)], Def, pick(),
                 static_cast<int64_t>(R.nextBelow(31) + 1));
      break;
    default:
      B.binop(Binary[R.nextBelow(6)], Def, pick(), pick());
      break;
    }
  }

  void emitMemOrCtx() {
    switch (R.nextBelow(3)) {
    case 0:
      B.load(pick(), InPtr, static_cast<int64_t>(R.nextBelow(Config.MemLen)));
      break;
    case 1: {
      int64_t Slot = StoreCursor++ % static_cast<int>(Config.OutLen);
      B.store(OutPtr, Slot, pick());
      break;
    }
    default:
      B.ctx();
      break;
    }
  }

  void emitIf(int Depth) {
    Reg Cond = pick();
    int ThenB = B.createBlock();
    int ElseB = B.createBlock();
    int Join = B.createBlock();
    B.condBrZ(R.nextChance(1, 2) ? Opcode::BrZ : Opcode::BrNz, Cond, ElseB);
    B.setFallThrough(ThenB);
    B.setInsertBlock(ThenB);
    emitSequence(Depth + 1, 1 + static_cast<int>(R.nextBelow(6)));
    B.br(Join);
    B.setInsertBlock(ElseB);
    if (R.nextChance(3, 4))
      emitSequence(Depth + 1, 1 + static_cast<int>(R.nextBelow(6)));
    B.setFallThrough(Join);
    B.setInsertBlock(Join);
  }

  void emitLoop(int Depth) {
    ++LoopNest;
    // Fresh counter outside the pool so the body cannot clobber it.
    Reg Counter = B.reg();
    B.imm(Counter, static_cast<int64_t>(2 + R.nextBelow(3)));
    int Body = B.createBlock();
    int After = B.createBlock();
    B.setFallThrough(Body);
    B.setInsertBlock(Body);
    emitSequence(Depth + 1, 2 + static_cast<int>(R.nextBelow(8)));
    B.binopImm(Opcode::SubI, Counter, Counter, 1);
    B.condBrZ(Opcode::BrNz, Counter, Body);
    B.setFallThrough(After);
    B.setInsertBlock(After);
    --LoopNest;
  }

  bool loopAllowed() const {
    return Config.MaxLoopNest < 0 || LoopNest < Config.MaxLoopNest;
  }

  void emitSequence(int Depth, int Items) {
    const uint64_t CtxBand = static_cast<uint64_t>(Kind.CtxRatePerMille);
    const uint64_t IfBand = CtxBand + static_cast<uint64_t>(Kind.IfWeight);
    const uint64_t LoopBand = IfBand + static_cast<uint64_t>(Kind.LoopWeight);
    for (int I = 0; I < Items && Budget > 0; ++I) {
      --Budget;
      uint64_t Dice = R.nextBelow(1000);
      if (Dice < CtxBand) {
        emitMemOrCtx();
        continue;
      }
      if (Dice < IfBand && Depth < Config.MaxDepth) {
        emitIf(Depth);
        continue;
      }
      if (Dice < LoopBand && Depth < Config.MaxDepth && loopAllowed()) {
        emitLoop(Depth);
        continue;
      }
      emitAlu();
    }
  }
};

Program GeneratorImpl::generate() {
  P.Name = "random";
  B.startBlock("entry");

  InPtr = B.reg("inp");
  OutPtr = B.reg("outp");
  B.imm(InPtr, Config.MemBase);
  B.imm(OutPtr, Config.OutBase);
  const int PoolSize = std::max(Config.NumLongLived + Kind.ExtraLongLived,
                                Config.PressureTarget);
  for (int I = 0; I < PoolSize; ++I) {
    Reg V = B.reg("v" + std::to_string(I));
    B.imm(V, static_cast<int64_t>(R.nextBelow(1 << 20)));
    Pool.push_back(V);
  }

  Budget = Config.TargetInstructions;
  emitSequence(0, Config.TargetInstructions);

  // Store trail tail: make every pool register observable. Slots wrap when
  // a PressureTarget-widened pool outgrows the output region (the store is
  // still a use, which is what keeps the register live to the end).
  for (size_t I = 0; I < Pool.size(); ++I)
    B.store(OutPtr,
            static_cast<int64_t>(Config.OutLen - 1 -
                                 (I % static_cast<size_t>(Config.OutLen))),
            Pool[I]);
  B.loopEnd();
  B.halt();

  if (Status S = verifyProgram(P); !S.ok())
    reportFatalError("generated program failed verification: " + S.str());
  return P;
}

} // namespace

Program npral::generateRandomProgram(uint64_t Seed,
                                     const GeneratorConfig &Config) {
  GeneratorImpl G(Seed, Config);
  return G.generate();
}
