//===- KernelsSched.cpp - wraps_rx, wraps_tx, fir2dim ---------------------===//
//
// The WRAPS packet scheduler (Zhuang & Liu, HiPC 2002) caches the whole
// per-class credit state in registers across the scheduling loop — the
// paper's scenario 3 notes that "wraps receive and send can run much slower
// (due to spills) if registers are not allocated properly". We reconstruct
// that signature: 16 per-class credit registers plus weights and window
// state, all live across every packet load, with a branchy classification
// tree so that different credits cross different CSBs.
//
// fir2dim (DSP-style 3x3 2D FIR) is the low-pressure companion thread.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

#include <string>

using namespace npral;
using namespace npral::kernels;

namespace {

/// Emit the 16-leaf classification tree shared by the wraps kernels. Each
/// leaf updates one credit register, a per-group packet counter and the
/// weight-indexed state, then records the winner.
std::string makeCreditTree(const std::string &UpdateOp, bool UseCounters) {
  std::string S;
  auto leaf = [&](int Q) {
    std::string N = std::to_string(Q);
    S += "q" + N + ":\n";
    S += "    " + UpdateOp + "  c" + N + ", c" + N + ", w" +
         std::to_string(Q % 2) + "\n";
    S += "    sub   c" + N + ", c" + N + ", len\n";
    if (UseCounters)
      S += "    addi  n" + std::to_string(Q / 8) + ", n" +
           std::to_string(Q / 8) + ", 1\n";
    S += "    mov   sel, c" + N + "\n";
    S += "    imm   win, " + N + "\n";
    S += "    br    emit\n";
  };
  // Two-level dispatch on bits 3..2 then 1..0.
  S += "    shri  g, cls, 2\n";
  S += "    andi  lo, cls, 3\n";
  S += "    andi  g1, g, 2\n";
  S += "    bnz   g1, g23\n";
  S += "    andi  g0, g, 1\n";
  S += "    bnz   g0, grp1\n";
  S += "    andi  l1, lo, 2\n    bnz   l1, q0_23\n";
  S += "    andi  l0, lo, 1\n    bnz   l0, q1\n    br q0\n";
  S += "q0_23:\n    andi  l0, lo, 1\n    bnz   l0, q3\n    br q2\n";
  S += "grp1:\n";
  S += "    andi  l1, lo, 2\n    bnz   l1, q4_67\n";
  S += "    andi  l0, lo, 1\n    bnz   l0, q5\n    br q4\n";
  S += "q4_67:\n    andi  l0, lo, 1\n    bnz   l0, q7\n    br q6\n";
  S += "g23:\n";
  S += "    andi  g0, g, 1\n";
  S += "    bnz   g0, grp3\n";
  S += "    andi  l1, lo, 2\n    bnz   l1, q8_ab\n";
  S += "    andi  l0, lo, 1\n    bnz   l0, q9\n    br q8\n";
  S += "q8_ab:\n    andi  l0, lo, 1\n    bnz   l0, q11\n    br q10\n";
  S += "grp3:\n";
  S += "    andi  l1, lo, 2\n    bnz   l1, q12_ef\n";
  S += "    andi  l0, lo, 1\n    bnz   l0, q13\n    br q12\n";
  S += "q12_ef:\n    andi  l0, lo, 1\n    bnz   l0, q15\n    br q14\n";
  for (int Q = 0; Q < 16; ++Q)
    leaf(Q);
  return S;
}

} // namespace

Workload kernels::buildWrapsRx(const ThreadMemLayout &L, int Slot) {
  std::string Asm = R"(
.thread wraps_rx
.entrylive buf, out, pidx
main:
    imm   c0, 1000
    imm   c1, 1000
    imm   c2, 1000
    imm   c3, 1000
    imm   c4, 1000
    imm   c5, 1000
    imm   c6, 1000
    imm   c7, 1000
    imm   c8, 1000
    imm   c9, 1000
    imm   c10, 1000
    imm   c11, 1000
    imm   c12, 1000
    imm   c13, 1000
    imm   c14, 1000
    imm   c15, 1000
    imm   w0, 64
    imm   w1, 128
    imm   n0, 0
    imm   n1, 0
    imm   burst, 12
pkt:
    andi  t0, pidx, 255
    shli  t0, t0, 1
    add   paddr, buf, t0
    load  hdr, [paddr+0]
    load  len, [paddr+1]
    andi  len, len, 511
    andi  cls, hdr, 15
)" + makeCreditTree("add ", /*UseCounters=*/true) + R"(
emit:
    andi  t1, pidx, 255
    shli  t1, t1, 1
    add   oaddr, out, t1
    store [oaddr+0], sel
    store [oaddr+1], win
    addi  pidx, pidx, 1
    subi  burst, burst, 1
    bnz   burst, pkt
    ; End-of-burst rebalance: snapshot the credit bank into fresh
    ; temporaries while the bank itself stays live for the closing fold.
    ; The ten s* snapshots are co-live with all sixteen credits inside one
    ; NSR — this is where wraps' register pressure peaks past the
    ; 32-register partition while its per-CSB crossing set stays moderate.
    add   s0, c0, n0
    add   s1, c1, n0
    add   s2, c2, n0
    add   s3, c3, n0
    add   s4, c4, n1
    add   s5, c5, n1
    add   s6, c6, n1
    add   s7, c7, n1
    xor   s8, c8, c9
    xor   s9, c10, c11
    xor   s10, c12, c13
    xor   s11, c14, c15
    add   s12, c0, c4
    add   s13, c8, c2
    add   s14, c6, c10
    ; The fold reads every credit after all snapshots exist, so the whole
    ; bank and all fifteen snapshots are co-live here.
    xor   fold, c0, c1
    xor   fold, fold, c2
    xor   fold, fold, c3
    xor   fold, fold, c4
    xor   fold, fold, c5
    xor   fold, fold, c6
    xor   fold, fold, c7
    xor   fold, fold, c8
    xor   fold, fold, c9
    xor   fold, fold, c10
    xor   fold, fold, c11
    xor   fold, fold, c12
    xor   fold, fold, c13
    xor   fold, fold, c14
    xor   fold, fold, c15
    add   sig, s0, s1
    add   sig, sig, s2
    add   sig, sig, s3
    add   sig, sig, s4
    add   sig, sig, s5
    add   sig, sig, s6
    add   sig, sig, s7
    xor   sig, sig, s8
    xor   sig, sig, s9
    xor   sig, sig, s10
    xor   sig, sig, s11
    add   sig, sig, s12
    add   sig, sig, s13
    add   sig, sig, s14
    add   sig, sig, fold
    store [out+1022], sig
    ctx
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("wraps_rx", Slot, 512)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 1024;
  W.SpillBase = L.SpillBase;
  return fromAsm("wraps_rx", Asm, {L.InBase, L.OutBase, 0}, std::move(W));
}

Workload kernels::buildWrapsTx(const ThreadMemLayout &L, int Slot) {
  // Send side: same credit bank plus a rate-window pair per group, drained
  // instead of charged.
  std::string Asm = R"(
.thread wraps_tx
.entrylive buf, out, pidx
main:
    imm   c0, 4000
    imm   c1, 4000
    imm   c2, 4000
    imm   c3, 4000
    imm   c4, 4000
    imm   c5, 4000
    imm   c6, 4000
    imm   c7, 4000
    imm   c8, 4000
    imm   c9, 4000
    imm   c10, 4000
    imm   c11, 4000
    imm   c12, 4000
    imm   c13, 4000
    imm   c14, 4000
    imm   c15, 4000
    imm   w0, 32
    imm   w1, 48
    imm   rate0, 0
    imm   rate1, 0
    imm   burst, 12
pkt:
    andi  t0, pidx, 255
    shli  t0, t0, 1
    add   paddr, buf, t0
    load  hdr, [paddr+0]
    load  len, [paddr+1]
    andi  len, len, 511
    andi  cls, hdr, 15
)" + makeCreditTree("sub ", /*UseCounters=*/false) + R"(
emit:
    andi  t1, cls, 8
    bnz   t1, hiRate
    add   rate0, rate0, len
    br    rated
hiRate:
    add   rate1, rate1, len
rated:
    andi  t2, pidx, 255
    shli  t2, t2, 1
    add   oaddr, out, t2
    store [oaddr+0], sel
    store [oaddr+1], win
    addi  pidx, pidx, 1
    subi  burst, burst, 1
    bnz   burst, pkt
    ; Rate-window close-out: snapshot the drained credit bank while it is
    ; still live for the closing fold — same pressure rationale as the
    ; receive side.
    add   s0, c0, rate0
    add   s1, c1, rate1
    add   s2, c2, rate0
    add   s3, c3, rate1
    xor   s4, c4, c12
    xor   s5, c5, c13
    xor   s6, c6, c14
    xor   s7, c7, c15
    mul   s8, c8, c9
    mul   s9, c10, c11
    add   s10, c12, c1
    add   s11, c13, c2
    add   s12, c14, c3
    add   s13, c15, c0
    xor   s14, c8, c4
    xor   fold, c0, c1
    xor   fold, fold, c2
    xor   fold, fold, c3
    xor   fold, fold, c4
    xor   fold, fold, c5
    xor   fold, fold, c6
    xor   fold, fold, c7
    xor   fold, fold, c8
    xor   fold, fold, c9
    xor   fold, fold, c10
    xor   fold, fold, c11
    xor   fold, fold, c12
    xor   fold, fold, c13
    xor   fold, fold, c14
    xor   fold, fold, c15
    add   sig, s0, s1
    add   sig, sig, s2
    add   sig, sig, s3
    xor   sig, sig, s4
    xor   sig, sig, s5
    xor   sig, sig, s6
    xor   sig, sig, s7
    add   sig, sig, s8
    add   sig, sig, s9
    xor   sig, sig, s10
    xor   sig, sig, s11
    xor   sig, sig, s12
    xor   sig, sig, s13
    xor   sig, sig, s14
    add   sig, sig, fold
    store [out+1023], sig
    ctx
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("wraps_tx", Slot, 512)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 1024;
  W.SpillBase = L.SpillBase;
  return fromAsm("wraps_tx", Asm, {L.InBase, L.OutBase, 0}, std::move(W));
}

Workload kernels::buildFir2dim(const ThreadMemLayout &L, int Slot) {
  // 3x3 2D FIR over three 18-pixel rows: nine coefficients are loaded once
  // per iteration and stay in registers across the pixel loads; a 6-pixel
  // window slides along the rows.
  const std::string Asm = R"(
.thread fir2dim
.entrylive img, coef, out, ridx
main:
    load  k0, [coef+0]
    load  k1, [coef+1]
    load  k2, [coef+2]
    load  k3, [coef+3]
    load  k4, [coef+4]
    load  k5, [coef+5]
    load  k6, [coef+6]
    load  k7, [coef+7]
    load  k8, [coef+8]
    andi  t0, ridx, 31
    shli  t0, t0, 5
    add   r0, img, t0
    addi  r1, r0, 32
    addi  r2, r1, 32
    andi  t1, ridx, 31
    shli  t1, t1, 4
    add   oaddr, out, t1
    imm   col, 16
    load  a0, [r0+0]
    load  a1, [r1+0]
    load  a2, [r2+0]
    load  b0, [r0+1]
    load  b1, [r1+1]
    load  b2, [r2+1]
    addi  r0, r0, 2
    addi  r1, r1, 2
    addi  r2, r2, 2
col_loop:
    load  d0, [r0+0]
    load  d1, [r1+0]
    load  d2, [r2+0]
    ; All nine products are formed before any is consumed — they are
    ; internal temporaries co-live inside the loop body's NSR, which is
    ; where the kernel's pressure peaks (the coefficients and the sliding
    ; window are the boundary part).
    mul   p0, a0, k0
    mul   p1, b0, k1
    mul   p2, d0, k2
    mul   p3, a1, k3
    mul   p4, b1, k4
    mul   p5, d1, k5
    add   acc, p0, p1
    add   acc, acc, p2
    add   acc, acc, p3
    add   acc, acc, p4
    add   acc, acc, p5
    mul   p6, a2, k6
    mul   p7, b2, k7
    mul   p8, d2, k8
    add   acc, acc, p6
    add   acc, acc, p7
    add   acc, acc, p8
    shri  acc, acc, 8
    store [oaddr+0], acc
    addi  oaddr, oaddr, 1
    mov   a0, b0
    mov   a1, b1
    mov   a2, b2
    mov   b0, d0
    mov   b1, d1
    mov   b2, d2
    addi  r0, r0, 1
    addi  r1, r1, 1
    addi  r2, r2, 1
    subi  col, col, 1
    bnz   col, col_loop
    ctx
    addi  ridx, ridx, 1
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("fir2dim", Slot, 2048)});
  W.InitMemory.push_back(
      {L.InBase + 0x1000, makeInputData("fir2dim_coef", Slot, 9)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 512;
  W.SpillBase = L.SpillBase;
  return fromAsm("fir2dim", Asm,
                 {L.InBase, L.InBase + 0x1000, L.OutBase, 0}, std::move(W));
}
