//===- KernelsCrypto.cpp - md5, cast --------------------------------------===//
//
// Register-hungry NetBench/CommBench crypto kernels. md5 is the paper's
// performance-critical thread: the 16 message words are loaded into
// registers (each load a context switch the block accumulates across), the
// 64-step transform is fully unrolled, and a payload checksum plus an
// HMAC-style salt ride along — together they push total pressure past the
// 32-register fixed partition so the spilling baseline suffers while the
// shared-register allocator does not.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

#include "analysis/LiveRangeRenaming.h"
#include "ir/IRBuilder.h"
#include "ir/IRVerifier.h"

#include <array>

using namespace npral;
using namespace npral::kernels;

namespace {

// Standard MD5 tables.
constexpr uint32_t MD5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};
constexpr int MD5S[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                          7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                          5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                          4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                          6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                          6, 10, 15, 21};

} // namespace

Workload kernels::buildMd5(const ThreadMemLayout &L, int Slot) {
  Workload W;
  Program &P = W.Code;
  P.Name = "md5";
  IRBuilder B(P);

  // Entry-live registers.
  Reg Buf = B.reg("buf");
  Reg Out = B.reg("out");
  Reg Pidx = B.reg("pidx");
  P.EntryLiveRegs = {Buf, Out, Pidx};
  W.EntryValues = {L.InBase, L.OutBase, 0};

  // Persistent state, live across every load of the transform: chaining
  // digest, HMAC-style key schedule, and payload-integrity accumulators.
  // Message words are streamed from memory one step at a time (the IXP
  // keeps the block in transfer registers, not GPRs), so the transform
  // yields the CPU at every step — about 7% of the instructions cause a
  // context switch, matching the paper's ~10% observation.
  Reg H0 = B.reg("h0"), H1 = B.reg("h1"), H2 = B.reg("h2"), H3 = B.reg("h3");
  constexpr int NumKs = 12;
  std::array<Reg, NumKs> Ks;
  for (int I = 0; I < NumKs; ++I)
    Ks[static_cast<size_t>(I)] = B.reg("ks" + std::to_string(I));
  Reg Acc0 = B.reg("acc0"), Acc1 = B.reg("acc1");
  Reg Acc2 = B.reg("acc2"), Acc3 = B.reg("acc3");
  Reg A = B.reg("a"), Bv = B.reg("b"), C = B.reg("c"), D = B.reg("d");
  Reg T1 = B.reg("t1"), T2 = B.reg("t2"), T3 = B.reg("t3");
  Reg KReg = B.reg("k"), X = B.reg("x");
  Reg PAddr = B.reg("paddr"), OAddr = B.reg("oaddr"), Tmp = B.reg("tmp");
  std::array<Reg, 8> Mx;
  for (int I = 0; I < 8; ++I)
    Mx[static_cast<size_t>(I)] = B.reg("m" + std::to_string(I));
  Reg Z1 = B.reg("z1"), Z2 = B.reg("z2");

  B.startBlock("init");
  B.imm(H0, 0x67452301u);
  B.imm(H1, 0xefcdab89u);
  B.imm(H2, 0x98badcfeu);
  B.imm(H3, 0x10325476u);
  for (int I = 0; I < NumKs; ++I)
    B.imm(Ks[static_cast<size_t>(I)], 0x5a827999u + 0x10001u * static_cast<uint32_t>(I));
  B.imm(Acc0, 0);
  B.imm(Acc1, 0);
  B.imm(Acc2, 0);
  B.imm(Acc3, 0);

  int Main = B.createBlock("main");
  B.setFallThrough(Main);
  B.setInsertBlock(Main);

  // Block address: buf + (pidx & 63) * 16.
  B.binopImm(Opcode::AndI, Tmp, Pidx, 63);
  B.binopImm(Opcode::ShlI, Tmp, Tmp, 4);
  B.binop(Opcode::Add, PAddr, Buf, Tmp);

  B.mov(A, H0);
  B.mov(Bv, H1);
  B.mov(C, H2);
  B.mov(D, H3);

  // 64 fully unrolled steps; the message word is loaded fresh at each step
  // (every load a CSB) and the role registers rotate so no per-step moves
  // are needed.
  std::array<Reg, 4> Role = {A, Bv, C, D}; // a, b, c, d
  for (int Step = 0; Step < 64; ++Step) {
    Reg Ra = Role[0], Rb = Role[1], Rc = Role[2], Rd = Role[3];
    int Round = Step / 16;
    int K;
    switch (Round) {
    case 0:
      K = Step;
      break;
    case 1:
      K = (5 * Step + 1) % 16;
      break;
    case 2:
      K = (3 * Step + 5) % 16;
      break;
    default:
      K = (7 * Step) % 16;
      break;
    }
    B.load(X, PAddr, K);
    // Payload integrity riding along with the digest.
    B.binop(Opcode::Add, Acc0, Acc0, X);
    B.binop(Opcode::Xor, Acc1, Acc1, X);
    switch (Round) {
    case 0:
      // F = (b & c) | (~b & d)
      B.binop(Opcode::And, T1, Rb, Rc);
      B.unop(Opcode::Not, T2, Rb);
      B.binop(Opcode::And, T2, T2, Rd);
      B.binop(Opcode::Or, T1, T1, T2);
      break;
    case 1:
      // G = (d & b) | (~d & c)
      B.binop(Opcode::And, T1, Rd, Rb);
      B.unop(Opcode::Not, T2, Rd);
      B.binop(Opcode::And, T2, T2, Rc);
      B.binop(Opcode::Or, T1, T1, T2);
      break;
    case 2:
      // H = b ^ c ^ d
      B.binop(Opcode::Xor, T1, Rb, Rc);
      B.binop(Opcode::Xor, T1, T1, Rd);
      break;
    default:
      // I = c ^ (b | ~d)
      B.unop(Opcode::Not, T1, Rd);
      B.binop(Opcode::Or, T1, Rb, T1);
      B.binop(Opcode::Xor, T1, Rc, T1);
      break;
    }
    // Key-schedule mixing keeps the whole schedule hot (and therefore
    // expensive for the spilling baseline to evict).
    B.binop(Opcode::Xor, T1, T1, Ks[static_cast<size_t>(Step % NumKs)]);
    B.binop(Opcode::Add, T1, T1, Ra);
    B.binop(Opcode::Add, T1, T1, X);
    B.imm(KReg, MD5K[Step]);
    B.binop(Opcode::Add, T1, T1, KReg);
    int S = MD5S[Step];
    B.binopImm(Opcode::ShlI, T2, T1, S);
    B.binopImm(Opcode::ShrI, T3, T1, 32 - S);
    B.binop(Opcode::Or, T2, T2, T3);
    // new b lands in the register whose old 'a' value is now dead.
    B.binop(Opcode::Add, Ra, T2, Rb);
    B.binop(Opcode::Add, Acc2, Acc2, T2);
    B.binop(Opcode::Xor, Acc3, Acc3, T2);
    // Round-boundary mixer: digest feedback plus a wide fan-out of
    // integrity terms. The eight m* temporaries are formed before any is
    // consumed and die before the next load, so they are internal to this
    // NSR — they raise the peak register pressure past the 32-register
    // partition without widening any CSB crossing set.
    if (Step % 16 == 15) {
      Reg H = Step / 16 == 0 ? H0 : Step / 16 == 1 ? H1 : Step / 16 == 2 ? H2
                                                                         : H3;
      B.binop(Opcode::Xor, Acc2, Acc2, H);
      B.binop(Opcode::Xor, Mx[0], Ra, Acc2);
      B.binop(Opcode::Add, Mx[1], Rb, Acc3);
      B.binop(Opcode::Xor, Mx[2], Rc, Acc0);
      B.binop(Opcode::Add, Mx[3], Rd, Acc1);
      B.binop(Opcode::Add, Mx[4], Ra, Rc);
      B.binop(Opcode::Xor, Mx[5], Rb, Rd);
      B.binop(Opcode::Add, Mx[6], Acc0, Acc2);
      B.binop(Opcode::Xor, Mx[7], Acc1, Acc3);
      B.binop(Opcode::Add, Z1, Mx[0], Mx[1]);
      B.binop(Opcode::Xor, Z1, Z1, Mx[2]);
      B.binop(Opcode::Add, Z1, Z1, Mx[3]);
      B.binop(Opcode::Xor, Z2, Mx[4], Mx[5]);
      B.binop(Opcode::Add, Z2, Z2, Mx[6]);
      B.binop(Opcode::Xor, Z2, Z2, Mx[7]);
      B.binop(Opcode::Add, Z1, Z1, Z2);
      B.binop(Opcode::Xor, Acc3, Acc3, Z1);
    }
    Role = {Rd, Ra, Rb, Rc};
  }
  // 64 role rotations = 16 full cycles: the roles are back in place.

  B.binop(Opcode::Add, H0, H0, A);
  B.binop(Opcode::Add, H1, H1, Bv);
  B.binop(Opcode::Add, H2, H2, C);
  B.binop(Opcode::Add, H3, H3, D);

  // Emit digest + payload checksums.
  B.binopImm(Opcode::AndI, Tmp, Pidx, 63);
  B.binopImm(Opcode::ShlI, Tmp, Tmp, 3);
  B.binop(Opcode::Add, OAddr, Out, Tmp);
  B.store(OAddr, 0, H0);
  B.store(OAddr, 1, H1);
  B.store(OAddr, 2, H2);
  B.store(OAddr, 3, H3);
  B.store(OAddr, 4, Acc0);
  B.store(OAddr, 5, Acc1);
  B.store(OAddr, 6, Acc2);
  B.store(OAddr, 7, Acc3);
  B.ctx();
  B.binopImm(Opcode::AddI, Pidx, Pidx, 1);
  B.loopEnd();
  B.br(Main);

  if (Status S = verifyProgram(P); !S.ok())
    reportFatalError("md5 kernel is malformed: " + S.str());
  W.Code = renameLiveRanges(W.Code);

  W.InitMemory.push_back({L.InBase, makeInputData("md5", Slot, 1024)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 512;
  W.SpillBase = L.SpillBase;
  W.Name = "md5";
  return W;
}

Workload kernels::buildCast(const ThreadMemLayout &L, int Slot) {
  // CAST-like Feistel cipher: 16 subkeys loaded per burst (live across the
  // block loads), 8 unrolled rounds, two blocks encrypted per inner
  // iteration in interleaved lanes. The two lanes' round temporaries are
  // co-live internal values, so peak pressure sits well above the crossing
  // set (the subkeys plus loop state).
  std::string Asm = R"(
.thread cast
.entrylive buf, keys, out, pidx
main:
)";
  for (int K = 0; K < 16; ++K)
    Asm += "    load  k" + std::to_string(K) + ", [keys+" + std::to_string(K) +
           "]\n";
  Asm += R"(    imm   burst, 4
blk:
    andi  t0, pidx, 127
    shli  t0, t0, 2
    add   paddr, buf, t0
    load  la, [paddr+0]
    load  ra, [paddr+1]
    load  lb, [paddr+2]
    load  rb, [paddr+3]
)";
  const int Rot[8] = {7, 9, 11, 13, 15, 6, 8, 10};
  for (int Round = 0; Round < 8; ++Round) {
    std::string K0 = "k" + std::to_string(2 * Round);
    std::string K1 = "k" + std::to_string(2 * Round + 1);
    std::string Src = Round % 2 == 0 ? "l" : "r";
    std::string Dst = Round % 2 == 0 ? "r" : "l";
    int S = Rot[Round];
    // Both lanes compute their round function before either applies it.
    Asm += "    xor   ua, " + Src + "a, " + K0 + "\n";
    Asm += "    xor   ub, " + Src + "b, " + K0 + "\n";
    Asm += "    shli  va, ua, " + std::to_string(S) + "\n";
    Asm += "    shli  vb, ub, " + std::to_string(S) + "\n";
    Asm += "    shri  wa, ua, " + std::to_string(32 - S) + "\n";
    Asm += "    shri  wb, ub, " + std::to_string(32 - S) + "\n";
    Asm += "    or    va, va, wa\n";
    Asm += "    or    vb, vb, wb\n";
    Asm += "    add   va, va, " + K1 + "\n";
    Asm += "    add   vb, vb, " + K1 + "\n";
    Asm += "    xor   " + Dst + "a, " + Dst + "a, va\n";
    Asm += "    xor   " + Dst + "b, " + Dst + "b, vb\n";
  }
  Asm += R"(    shli  o0, lb, 1
    shri  o1, lb, 31
    or    o0, o0, o1
    xor   o0, o0, ra
    shli  o2, rb, 3
    shri  o3, rb, 29
    or    o2, o2, o3
    xor   o2, o2, la
    andi  t4, pidx, 127
    shli  t4, t4, 1
    add   oaddr, out, t4
    store [oaddr+0], o0
    store [oaddr+1], o2
    addi  pidx, pidx, 1
    subi  burst, burst, 1
    bnz   burst, blk
    ctx
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("cast", Slot, 1024)});
  W.InitMemory.push_back(
      {L.InBase + 0x1000, makeInputData("cast_keys", Slot, 16)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 512;
  W.SpillBase = L.SpillBase;
  return fromAsm("cast", Asm, {L.InBase, L.InBase + 0x1000, L.OutBase, 0},
                 std::move(W));
}
