//===- Harness.cpp --------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cassert>

using namespace npral;

const std::vector<Scenario> &npral::getAraScenarios() {
  // Paper §9, Table 3. Scenario 1 is a processing module between receive
  // and send; scenario 2 a complete module serving one rx and one tx port;
  // scenario 3 the WRAPS scheduler with background processing.
  static const std::vector<Scenario> Scenarios = {
      {"S1_md5_fir2dim", {"md5", "md5", "fir2dim", "fir2dim"}, {0, 1}},
      {"S2_l2l3fwd_md5", {"l2l3fwd_rx", "l2l3fwd_tx", "md5", "md5"}, {2, 3}},
      {"S3_wraps_fir_frag", {"wraps_rx", "wraps_tx", "fir2dim", "frag"},
       {0, 1}},
  };
  return Scenarios;
}

std::vector<Workload> npral::buildScenarioWorkloads(const Scenario &S) {
  std::vector<Workload> Out;
  for (int T = 0; T < 4; ++T) {
    ErrorOr<Workload> W = buildWorkload(S.Kernels[static_cast<size_t>(T)], T);
    if (!W.ok())
      reportFatalError("scenario '" + S.Name + "': " + W.status().str());
    Out.push_back(W.take());
  }
  return Out;
}

MultiThreadProgram
npral::toMultiThreadProgram(const std::vector<Workload> &Workloads,
                            const std::string &Name) {
  MultiThreadProgram MTP;
  MTP.Name = Name;
  for (const Workload &W : Workloads)
    MTP.Threads.push_back(W.Code);
  return MTP;
}

SimConfig npral::defaultExperimentConfig() {
  SimConfig Config;
  // SDRAM-class latency: packet data lives in DRAM on the IXP1200 (the
  // paper quotes "at least 20 cycles" for memory; SDRAM is ~40). The
  // ablation bench sweeps this.
  Config.MemLatency = 40;
  Config.CtxSwitchPenalty = 1;
  Config.TargetIterations = 50;
  Config.MaxCycles = 500'000'000;
  return Config;
}

SimConfig npral::equivalenceConfig() {
  SimConfig Config = defaultExperimentConfig();
  Config.TargetIterations = 10;
  Config.HaltAtTarget = true;
  return Config;
}

ScenarioRun
npral::simulateWithWorkloads(const std::vector<Workload> &Workloads,
                             const MultiThreadProgram &MTP,
                             const SimConfig &Config, SimObserver *Observer) {
  assert(Workloads.size() == MTP.Threads.size() && "thread count mismatch");
  ScenarioRun Run;

  Simulator Sim(MTP, Config);
  Sim.setObserver(Observer);
  for (size_t T = 0; T < Workloads.size(); ++T) {
    const Workload &W = Workloads[T];
    for (const Workload::MemRegion &Region : W.InitMemory)
      Sim.writeMemory(Region.Base, Region.Words);
    Sim.setEntryValues(static_cast<int>(T), W.EntryValues);
  }

  SimResult Result = Sim.run();
  Run.TotalCycles = Result.TotalCycles;
  if (!Result.Completed) {
    Run.FailReason = Result.FailReason;
    return Run;
  }

  for (size_t T = 0; T < Workloads.size(); ++T) {
    const Workload &W = Workloads[T];
    const ThreadStats &TSt = Result.Threads[T];
    ThreadRunMetrics M;
    M.Kernel = W.Name;
    M.CyclesPerIter = TSt.cyclesPerIteration(Config.TargetIterations);
    M.Iterations = TSt.Iterations;
    M.InstrsExecuted = TSt.InstrsExecuted;
    M.CtxEvents = TSt.CtxEvents;
    M.MemOps = TSt.MemOps;
    M.OutputHash = Sim.hashMemoryRange(W.OutputBase, W.OutputLen);
    Run.Threads.push_back(M);
  }
  Run.Success = true;
  return Run;
}

BaselineAllocationOutcome
npral::allocateScenarioBaseline(const std::vector<Workload> &Workloads,
                                int RegsPerThread) {
  BaselineAllocationOutcome Outcome;
  std::vector<Program> Allocated;
  for (const Workload &W : Workloads) {
    ChaitinConfig Config;
    Config.NumColors = RegsPerThread;
    Config.SpillBase = W.SpillBase;
    ChaitinResult R = runChaitinAllocator(W.Code, Config);
    if (!R.Success) {
      Outcome.FailReason =
          "baseline failed on '" + W.Name + "': " + R.FailReason;
      return Outcome;
    }
    Allocated.push_back(R.Allocated);
    Outcome.PerThread.push_back(std::move(R));
  }
  Outcome.Physical =
      materializeBaseline(Allocated, RegsPerThread, "baseline");
  Outcome.Success = true;
  return Outcome;
}
