//===- Workload.cpp - Registry and shared kernel helpers ------------------===//

#include "workloads/Workload.h"

#include "analysis/LiveRangeRenaming.h"
#include "asmparse/AsmParser.h"
#include "support/Random.h"
#include "workloads/Kernels.h"

#include <functional>

using namespace npral;
using namespace npral::kernels;

const std::vector<std::string> &npral::getWorkloadNames() {
  static const std::vector<std::string> Names = {
      "frag",    "drr",        "cast",       "fir2dim", "md5",  "crc",
      "url",     "l2l3fwd_rx", "l2l3fwd_tx", "wraps_rx", "wraps_tx"};
  return Names;
}

ErrorOr<Workload> npral::buildWorkload(const std::string &Name, int Slot) {
  if (Slot < 0 || Slot >= 4)
    return Status::error("thread slot must be in [0, 4)");
  ThreadMemLayout L = ThreadMemLayout::forSlot(Slot);
  if (Name == "frag")
    return buildFrag(L, Slot);
  if (Name == "drr")
    return buildDrr(L, Slot);
  if (Name == "cast")
    return buildCast(L, Slot);
  if (Name == "fir2dim")
    return buildFir2dim(L, Slot);
  if (Name == "md5")
    return buildMd5(L, Slot);
  if (Name == "crc")
    return buildCrc(L, Slot);
  if (Name == "url")
    return buildUrl(L, Slot);
  if (Name == "l2l3fwd_rx")
    return buildL2l3fwdRx(L, Slot);
  if (Name == "l2l3fwd_tx")
    return buildL2l3fwdTx(L, Slot);
  if (Name == "wraps_rx")
    return buildWrapsRx(L, Slot);
  if (Name == "wraps_tx")
    return buildWrapsTx(L, Slot);
  return Status::error("unknown workload '" + Name + "'");
}

Workload kernels::fromAsm(const std::string &Name, const std::string &AsmText,
                          std::vector<uint32_t> EntryValues,
                          Workload Partial) {
  ErrorOr<Program> P = parseSingleProgram(AsmText);
  if (!P.ok())
    reportFatalError("kernel '" + Name + "' failed to assemble: " +
                     P.status().str());
  Partial.Name = Name;
  // One register per live range (paper §9: live ranges are restored from
  // the source); analyzeThread depends on this.
  Partial.Code = renameLiveRanges(P.take());
  Partial.EntryValues = std::move(EntryValues);
  if (Partial.Code.EntryLiveRegs.size() != Partial.EntryValues.size())
    reportFatalError("kernel '" + Name +
                     "': entry value count does not match .entrylive");
  return Partial;
}

std::vector<uint32_t> kernels::makeInputData(const std::string &Name, int Slot,
                                             size_t Words) {
  // Deterministic per (kernel, slot) so experiments are reproducible.
  uint64_t Seed = 0xcbf29ce484222325ULL;
  for (char C : Name)
    Seed = (Seed ^ static_cast<uint64_t>(C)) * 0x100000001b3ULL;
  Seed ^= static_cast<uint64_t>(Slot) * 0x9e3779b97f4a7c15ULL;
  Rng R(Seed);
  std::vector<uint32_t> Data(Words);
  for (uint32_t &W : Data)
    W = static_cast<uint32_t>(R.next());
  return Data;
}
