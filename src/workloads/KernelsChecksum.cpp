//===- KernelsChecksum.cpp - frag, crc, drr -------------------------------===//
//
// Reconstructions of the checksum/scheduling CommBench & NetBench kernels.
// frag follows the paper's own running example (Fig. 4): the IP checksum
// loop of CommBench "frag", including the programmer-inserted voluntary
// ctx_switch instructions that avoid monopolising the CPU.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

using namespace npral;
using namespace npral::kernels;

Workload kernels::buildFrag(const ThreadMemLayout &L, int Slot) {
  // IP fragmentation: per packet, checksum the 10-word header (two words
  // per loop iteration to keep the CTX ratio near the paper's ~10 %),
  // then emit two fragment descriptors with recomputed checksums.
  const std::string Asm = R"(
.thread frag
.entrylive buf, out, pidx
main:
    andi  t0, pidx, 63
    shli  t0, t0, 4
    add   paddr, buf, t0
    imm   sum, 0
    imm   cnt, 5
    mov   cur, paddr
csum:
    load  w0, [cur+0]
    load  w1, [cur+1]
    add   sum, sum, w0
    shri  f0, sum, 16
    andi  sum, sum, 0xFFFF
    add   sum, sum, f0
    add   sum, sum, w1
    shri  f0, sum, 16
    andi  sum, sum, 0xFFFF
    add   sum, sum, f0
    addi  cur, cur, 2
    subi  cnt, cnt, 1
    bnz   cnt, csum
    ctx
    load  id, [paddr+0]
    load  fo, [paddr+1]
    load  ln, [paddr+2]
    ; Fan-out/fan-in: both fragments' header fields are materialised as
    ; co-live temporaries and folded into two descriptor words before any
    ; store, so the whole bouquet lives and dies inside one NSR — this is
    ; the kernel's internal pressure peak.
    not   csum0, sum
    andi  csum0, csum0, 0xFFFF
    andi  frag0, fo, 0x1FFF
    ori   frag0, frag0, 0x2000
    shri  half, ln, 1
    sub   rest, ln, half
    addi  frag1, frag0, 64
    andi  frag1, frag1, 0x3FFF
    add   c1, csum0, half
    shri  f1, c1, 16
    andi  c1, c1, 0xFFFF
    add   c1, c1, f1
    xor   id1, id, frag1
    add   tot, half, rest
    shli  d0, frag0, 16
    or    d0, d0, csum0
    xor   d0, d0, id
    shli  d1, frag1, 16
    or    d1, d1, c1
    xor   d1, d1, id1
    add   d1, d1, tot
    andi  t2, pidx, 63
    shli  t2, t2, 2
    add   oaddr, out, t2
    store [oaddr+0], id
    store [oaddr+1], d0
    store [oaddr+2], d1
    store [oaddr+3], half
    ctx
    addi  pidx, pidx, 1
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("frag", Slot, 1024)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 512;
  W.SpillBase = L.SpillBase;
  return fromAsm("frag", Asm, {L.InBase, L.OutBase, 0}, std::move(W));
}

Workload kernels::buildCrc(const ThreadMemLayout &L, int Slot) {
  // CRC over an 8-word payload per packet; four shift/xor rounds per word,
  // branch-free (the classic table-less formulation, as used on NPUs that
  // lack cheap table lookups).
  const std::string Asm = R"(
.thread crc
.entrylive buf, out, pidx
main:
    andi  t0, pidx, 127
    shli  t0, t0, 3
    add   paddr, buf, t0
    imm   crc, 0xFFFFFFFF
    imm   cnt, 8
    mov   cur, paddr
word:
    load  w, [cur+0]
    xor   crc, crc, w
    imm   poly, 0xEDB88320
    andi  b0, crc, 1
    neg   m0, b0
    shri  crc, crc, 1
    and   m0, m0, poly
    xor   crc, crc, m0
    andi  b1, crc, 1
    neg   m1, b1
    shri  crc, crc, 1
    and   m1, m1, poly
    xor   crc, crc, m1
    andi  b2, crc, 1
    neg   m2, b2
    shri  crc, crc, 1
    and   m2, m2, poly
    xor   crc, crc, m2
    andi  b3, crc, 1
    neg   m3, b3
    shri  crc, crc, 1
    and   m3, m3, poly
    xor   crc, crc, m3
    addi  cur, cur, 1
    subi  cnt, cnt, 1
    bnz   cnt, word
    not   res, crc
    andi  t1, pidx, 127
    store [out+0], res
    add   oaddr, out, t1
    store [oaddr+0], res
    ctx
    addi  pidx, pidx, 1
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("crc", Slot, 1024)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 128;
  W.SpillBase = L.SpillBase;
  return fromAsm("crc", Asm, {L.InBase, L.OutBase, 0}, std::move(W));
}

Workload kernels::buildDrr(const ThreadMemLayout &L, int Slot) {
  // Deficit round robin over 8 flows. The per-flow deficit counters stay in
  // registers for the whole scheduling loop (they are live across every
  // packet load), which is what gives drr its boundary register pressure.
  // Flow selection is a branch tree because the machine has no indexed
  // register access.
  const std::string Asm = R"(
.thread drr
.entrylive buf, out, pidx
main:
    imm   d0, 0
    imm   d1, 0
    imm   d2, 0
    imm   d3, 0
    imm   d4, 0
    imm   d5, 0
    imm   d6, 0
    imm   d7, 0
    imm   quantum, 500
    imm   burst, 16
pkt:
    andi  t0, pidx, 255
    shli  t0, t0, 1
    add   paddr, buf, t0
    load  hdr, [paddr+0]
    load  len, [paddr+1]
    andi  len, len, 1023
    andi  q, hdr, 7
    andi  t1, q, 4
    bnz   t1, hi4
    andi  t2, q, 2
    bnz   t2, q23
    andi  t3, q, 1
    bnz   t3, q1
    add   d0, d0, quantum
    sub   d0, d0, len
    mov   sel, d0
    br    emit
q1:
    add   d1, d1, quantum
    sub   d1, d1, len
    mov   sel, d1
    br    emit
q23:
    andi  t3, q, 1
    bnz   t3, q3
    add   d2, d2, quantum
    sub   d2, d2, len
    mov   sel, d2
    br    emit
q3:
    add   d3, d3, quantum
    sub   d3, d3, len
    mov   sel, d3
    br    emit
hi4:
    andi  t2, q, 2
    bnz   t2, q67
    andi  t3, q, 1
    bnz   t3, q5
    add   d4, d4, quantum
    sub   d4, d4, len
    mov   sel, d4
    br    emit
q5:
    add   d5, d5, quantum
    sub   d5, d5, len
    mov   sel, d5
    br    emit
q67:
    andi  t3, q, 1
    bnz   t3, q7
    add   d6, d6, quantum
    sub   d6, d6, len
    mov   sel, d6
    br    emit
q7:
    add   d7, d7, quantum
    sub   d7, d7, len
    mov   sel, d7
emit:
    ; Service-decision fan-out: six co-live metrics derived from the
    ; winner, folded into one service word (internal to this NSR).
    add   e0, sel, quantum
    xor   e1, sel, hdr
    muli  e2, len, 3
    shri  e3, sel, 4
    add   e4, len, quantum
    xor   e5, hdr, len
    add   svc, e0, e1
    add   svc, svc, e2
    xor   svc, svc, e3
    add   svc, svc, e4
    xor   svc, svc, e5
    add   sel, sel, svc
    andi  t4, pidx, 255
    add   oaddr, out, t4
    store [oaddr+0], sel
    addi  pidx, pidx, 1
    subi  burst, burst, 1
    bnz   burst, pkt
    ctx
    xor   chk, d0, d1
    xor   chk, chk, d2
    xor   chk, chk, d3
    xor   chk, chk, d4
    xor   chk, chk, d5
    xor   chk, chk, d6
    xor   chk, chk, d7
    store [out+511], chk
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("drr", Slot, 512)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 512;
  W.SpillBase = L.SpillBase;
  return fromAsm("drr", Asm, {L.InBase, L.OutBase, 0}, std::move(W));
}
