//===- KernelsForward.cpp - l2l3fwd_rx, l2l3fwd_tx, url -------------------===//
//
// Reconstructions of the Intel example L2/L3 forwarding pair (the paper's
// "complete processing module serving one receiving and one sending port")
// and the NetBench url switching kernel.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

using namespace npral;
using namespace npral::kernels;

Workload kernels::buildL2l3fwdRx(const ThreadMemLayout &L, int Slot) {
  // Receive side: pull a 6-word header, sanity-check the version field,
  // hash the address pair into a 256-entry next-hop table, and queue a
  // 4-word descriptor for the send side.
  const std::string Asm = R"(
.thread l2l3fwd_rx
.entrylive buf, table, out, pidx
main:
    andi  t0, pidx, 127
    shli  t0, t0, 3
    add   paddr, buf, t0
    load  h0, [paddr+0]
    load  h1, [paddr+1]
    load  h2, [paddr+2]
    load  h3, [paddr+3]
    shri  ver, h0, 28
    bz    ver, drop
    ; Two-lane hash: both lanes and their byte-swapped mates are co-live
    ; internal temporaries before the final combine.
    xor   ha, h1, h2
    xor   hb, h2, h3
    muli  ha, ha, 0x9E3B
    muli  hb, hb, 0x7F4A
    shri  t1, ha, 16
    shri  t2, hb, 13
    xor   ha, ha, t1
    xor   hb, hb, t2
    muli  ha, ha, 0x85EB
    muli  hb, hb, 0xC2B2
    xor   hash, ha, hb
    shri  t1, hash, 11
    xor   hash, hash, t1
    andi  hash, hash, 255
    add   taddr, table, hash
    load  hop, [taddr+0]
    ctx
    andi  t2, pidx, 127
    shli  t2, t2, 2
    add   oaddr, out, t2
    store [oaddr+0], h0
    store [oaddr+1], h3
    store [oaddr+2], hop
    xor   sig, h0, hop
    xor   sig, sig, h3
    store [oaddr+3], sig
    br    next
drop:
    andi  t2, pidx, 127
    shli  t2, t2, 2
    add   oaddr, out, t2
    imm   zero, 0
    store [oaddr+0], zero
    store [oaddr+3], zero
next:
    addi  pidx, pidx, 1
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("l2l3fwd_rx", Slot, 1024)});
  // Next-hop table lives above the packet area.
  W.InitMemory.push_back(
      {L.InBase + 0x1000, makeInputData("l2l3fwd_table", Slot, 256)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 512;
  W.SpillBase = L.SpillBase;
  return fromAsm("l2l3fwd_rx", Asm, {L.InBase, L.InBase + 0x1000, L.OutBase, 0},
                 std::move(W));
}

Workload kernels::buildL2l3fwdTx(const ThreadMemLayout &L, int Slot) {
  // Send side: read a descriptor, rewrite the MAC words, decrement TTL with
  // an incremental checksum fix (RFC 1624 style), and emit the wire words.
  const std::string Asm = R"(
.thread l2l3fwd_tx
.entrylive desc, out, pidx
main:
    andi  t0, pidx, 127
    shli  t0, t0, 2
    add   daddr, desc, t0
    load  d0, [daddr+0]
    load  d1, [daddr+1]
    load  d2, [daddr+2]
    load  d3, [daddr+3]
    shri  ttlf, d1, 24
    bz    ttlf, expired
    subi  ttlf, ttlf, 1
    shli  t1, ttlf, 24
    andi  d1, d1, 0xFFFFFF
    or    d1, d1, t1
    andi  csum, d2, 0xFFFF
    addi  csum, csum, 0x100
    shri  t2, csum, 16
    andi  csum, csum, 0xFFFF
    add   csum, csum, t2
    shri  t3, d2, 16
    shli  t3, t3, 16
    or    d2, t3, csum
    xor   mac0, d0, d3
    muli  mac1, d3, 0x8081
    ctx
    andi  t4, pidx, 127
    shli  t4, t4, 3
    add   oaddr, out, t4
    store [oaddr+0], mac0
    store [oaddr+1], mac1
    store [oaddr+2], d1
    store [oaddr+3], d2
    store [oaddr+4], d3
    br    next
expired:
    andi  t4, pidx, 127
    shli  t4, t4, 3
    add   oaddr, out, t4
    imm   dead, 0xDEAD
    store [oaddr+0], dead
next:
    addi  pidx, pidx, 1
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("l2l3fwd_tx", Slot, 512)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 1024;
  W.SpillBase = L.SpillBase;
  return fromAsm("l2l3fwd_tx", Asm, {L.InBase, L.OutBase, 0}, std::move(W));
}

Workload kernels::buildUrl(const ThreadMemLayout &L, int Slot) {
  // URL switching: match the payload against two 4-word patterns held in
  // registers (loaded once per burst, so they are live across the payload
  // loads) and route on the first hit.
  const std::string Asm = R"(
.thread url
.entrylive buf, pat, out, pidx
main:
    load  p0, [pat+0]
    load  p1, [pat+1]
    load  p2, [pat+2]
    load  p3, [pat+3]
    load  q0, [pat+4]
    load  q1, [pat+5]
    load  q2, [pat+6]
    load  q3, [pat+7]
    imm   burst, 8
    imm   hits, 0
pkt:
    andi  t0, pidx, 127
    shli  t0, t0, 3
    add   paddr, buf, t0
    load  w0, [paddr+0]
    load  w1, [paddr+1]
    load  w2, [paddr+2]
    load  w3, [paddr+3]
    ; All eight per-word differences are formed before any is reduced;
    ; they are internal to the matching NSR.
    xor   m0, w0, p0
    xor   m1, w1, p1
    xor   m2, w2, p2
    xor   m3, w3, p3
    xor   m4, w0, q0
    xor   m5, w1, q1
    xor   m6, w2, q2
    xor   m7, w3, q3
    or    r0a, m0, m1
    or    r0b, m2, m3
    or    r0a, r0a, r0b
    bz    r0a, match1
    or    r1a, m4, m5
    or    r1b, m6, m7
    or    r1a, r1a, r1b
    bz    r1a, match2
    imm   route, 0
    br    emit
match1:
    imm   route, 1
    addi  hits, hits, 1
    br    emit
match2:
    imm   route, 2
    addi  hits, hits, 1
emit:
    andi  t1, pidx, 127
    add   oaddr, out, t1
    store [oaddr+0], route
    addi  pidx, pidx, 1
    subi  burst, burst, 1
    bnz   burst, pkt
    ctx
    store [out+255], hits
    loopend
    br    main
)";
  Workload W;
  W.InitMemory.push_back({L.InBase, makeInputData("url", Slot, 1024)});
  W.InitMemory.push_back(
      {L.InBase + 0x1000, makeInputData("url_patterns", Slot, 8)});
  W.OutputBase = L.OutBase;
  W.OutputLen = 256;
  W.SpillBase = L.SpillBase;
  return fromAsm("url", Asm, {L.InBase, L.InBase + 0x1000, L.OutBase, 0},
                 std::move(W));
}
