//===- Watchdog.h - Per-stage deadline enforcement --------------*- C++ -*-===//
///
/// \file
/// A Watchdog arms a one-shot deadline on construction and flips an atomic
/// cancel flag when it expires. Long-running cooperative loops (the Fig. 8
/// reduction loop, the PGO rebalancer) poll the flag through
/// InterAllocLimits::Cancel and abandon the run with
/// StatusCode::DeadlineExceeded — the work is bounded without killing the
/// process or leaking a partially-constructed result.
///
/// The timer thread sleeps on a condition variable, so disarming (or
/// destroying) a watchdog that never fired costs one notify + join, not a
/// busy wait. A deadline of zero disables the watchdog entirely: no thread
/// is spawned and the flag never fires.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_HARDEN_WATCHDOG_H
#define NPRAL_HARDEN_WATCHDOG_H

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace npral {

class Watchdog {
public:
  /// Arm a deadline of \p DeadlineMs milliseconds; 0 disables.
  explicit Watchdog(int DeadlineMs);
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// The cancel flag to hand to cooperative loops. Stays valid for the
  /// watchdog's lifetime; never fires after disarm() returns.
  const std::atomic<bool> *cancelFlag() const { return &Fired; }

  /// True once the deadline expired (sticky).
  bool fired() const { return Fired.load(std::memory_order_relaxed); }

  /// Stop the timer; idempotent. After return the flag no longer changes.
  void disarm();

private:
  std::atomic<bool> Fired{false};
  bool Stop = false;
  std::mutex M;
  std::condition_variable CV;
  std::thread Timer;
};

} // namespace npral

#endif // NPRAL_HARDEN_WATCHDOG_H
