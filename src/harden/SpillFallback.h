//===- SpillFallback.h - Graceful degradation by spilling -------*- C++ -*-===//
///
/// \file
/// Graceful degradation for infeasible register budgets. The Fig. 8
/// inter-thread loop (and its sweep fallback) can only trade moves for
/// registers down to the hard floor Σ MinPRᵢ + maxᵢ(MinRᵢ − MinPRᵢ)-ish —
/// below that no split/move strategy exists and allocateInterThread fails
/// with StatusCode::Infeasible. This wrapper turns that hard failure into a
/// degraded success: it demotes the cheapest live ranges to absolute-
/// addressed scratch memory (SpillCode.h), re-analyses the rewritten
/// threads, and retries until the bounds fit.
///
/// Victim selection attacks the binding constraint directly:
///
///  * when a thread's floor is its boundary pressure (MinPR = RegPCSBmax),
///    the victim is a live range crossing the fullest CSB — spilling it
///    shrinks the crossing set because spill temporaries never live across
///    any CSB;
///  * when the floor is plain pressure (MinR = RegPmax), the victim is a
///    live range occupying the highest-pressure program point.
///
/// Among candidates the cheapest by frequency-weighted reference count wins
/// (CostModel block weights; unit weights without a profile), ties broken
/// by lowest register ID, so degradation is deterministic.
///
/// The first attempt is a verbatim allocateInterThread call on the caller's
/// bundles: for feasible inputs the result — and therefore every output
/// byte — is identical with or without the fallback enabled. Spill slots
/// live in a dedicated scratch region with per-thread disjoint windows, so
/// degraded threads never race on spill memory.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_HARDEN_SPILLFALLBACK_H
#define NPRAL_HARDEN_SPILLFALLBACK_H

#include "alloc/InterAllocator.h"

#include <memory>
#include <vector>

namespace npral {

struct SpillFallbackOptions {
  /// Total live ranges the fallback may demote before giving up.
  int MaxSpills = 64;
  /// First absolute word of the spill scratch region. The default sits in
  /// the top quarter of the 1 Mi-word simulator memory, clear of the
  /// example workloads' data.
  int64_t SlotBase = 0xE0000;
  /// Scratch words reserved per thread; thread T's slots start at
  /// SlotBase + T * SlotStride. Must be >= MaxSpills so windows of
  /// different threads can never overlap.
  int64_t SlotStride = 0x1000;
};

struct SpillFallbackResult {
  /// The final allocation. Success means the verifier-visible contract
  /// holds: every thread fits (PR, SR) with Σ PRᵢ + max SRᵢ <= Nreg.
  InterThreadResult Inter;
  /// True when the result came from a degraded (spilled) program.
  bool UsedSpilling = false;
  /// Victim live ranges demoted to memory, total and per thread.
  int SpilledRanges = 0;
  std::vector<int> SpillsPerThread;
  /// Spill instructions inserted over all threads.
  int SpillLoads = 0;
  int SpillStores = 0;
  /// allocateInterThread attempts (1 = the plain call sufficed).
  int Attempts = 0;
  /// The threads actually allocated (spill code included once degraded).
  /// Inter.Physical is derived from these, and the simulator must run them
  /// (not the caller's originals) for a degraded allocation.
  MultiThreadProgram Degraded;
};

/// Allocate \p MTP into \p Nreg registers, degrading by spilling when the
/// plain allocator reports Infeasible. \p Analyses / \p Models / \p Log /
/// \p Limits are forwarded exactly as in allocateInterThread; the log is
/// reset before each retry so it describes the final attempt only.
/// Cancellation (Limits.Cancel) is honoured between attempts as well as
/// inside each one. On failure Inter.FailCode distinguishes Infeasible
/// (budget unmeetable even spilled) from DeadlineExceeded.
SpillFallbackResult allocateWithSpillFallback(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models, AllocationDecisionLog *Log,
    const InterAllocLimits &Limits,
    const SpillFallbackOptions &Opts = SpillFallbackOptions());

} // namespace npral

#endif // NPRAL_HARDEN_SPILLFALLBACK_H
