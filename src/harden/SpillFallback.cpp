//===- SpillFallback.cpp --------------------------------------------------===//

#include "harden/SpillFallback.h"

#include "alloc/SpillCode.h"
#include "analysis/LiveRangeRenaming.h"
#include "trace/MetricsRegistry.h"
#include "trace/TraceEngine.h"

#include <algorithm>
#include <climits>

using namespace npral;

namespace {

/// Frequency-weighted reference count of \p V in \p P: the dynamic price of
/// demoting it (one reload per use, one store per def, each executing with
/// its site's block frequency).
int64_t spillPrice(const Program &P, const CostModel &CM, Reg V) {
  int64_t Price = 0;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    for (const Instruction &I : P.block(B).Instrs) {
      if (I.Def == V)
        Price += CM.blockWeight(B);
      if (I.Use1 == V)
        Price += CM.blockWeight(B);
      if (I.Use2 == V)
        Price += CM.blockWeight(B);
    }
  return Price;
}

/// Cheapest spillable register of \p Candidates (weighted refcount, ties to
/// the lowest ID); NoReg when every candidate is marked no-spill.
Reg cheapestVictim(const Program &P, const CostModel &CM,
                   const std::vector<char> &NoSpill,
                   const BitVector &Candidates) {
  Reg Best = NoReg;
  int64_t BestPrice = 0;
  Candidates.forEach([&](int V) {
    if (static_cast<size_t>(V) < NoSpill.size() &&
        NoSpill[static_cast<size_t>(V)])
      return;
    int64_t Price = spillPrice(P, CM, V);
    if (Best == NoReg || Price < BestPrice) {
      Best = V;
      BestPrice = Price;
    }
  });
  return Best;
}

/// Registers live across the fullest CSB of \p TA (the set realising
/// RegPCSBmax). Empty when the thread has no CSBs.
BitVector maxCrossingSet(const ThreadAnalysis &TA, int NumRegs) {
  BitVector Best(NumRegs);
  int BestCount = -1;
  for (const CSB &B : TA.NSRs.getCSBs())
    if (B.LiveAcross.count() > BestCount) {
      BestCount = B.LiveAcross.count();
      Best = B.LiveAcross;
      Best.resize(NumRegs);
    }
  return Best;
}

/// Registers occupying the highest-pressure program point of \p P (the set
/// realising RegPmax, a definition counting at its defining instruction).
BitVector maxPressureSet(const Program &P, const ThreadAnalysis &TA) {
  BitVector Best(P.NumRegs);
  int BestCount = -1;
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      BitVector At = TA.Liveness.instrLiveOut(B, I);
      At.resize(P.NumRegs);
      Reg D = BB.Instrs[static_cast<size_t>(I)].Def;
      if (D != NoReg)
        At.set(D);
      if (At.count() > BestCount) {
        BestCount = At.count();
        Best = At;
      }
    }
  }
  return Best;
}

/// The §5 feasibility floor over the current bounds: the smallest
/// Σ max(MinPRᵢ, MinRᵢ − SGR) + SGR over all shared-window sizes. The
/// fragment fallback (Lemma 1) realises any configuration at or above the
/// per-thread floors, so LB <= Nreg means an allocation exists. \p SGRStar
/// receives the minimising window size.
int feasibilityFloor(
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Bundles,
    int &SGRStar) {
  int MaxMinR = 0;
  for (const auto &B : Bundles)
    MaxMinR = std::max(MaxMinR, B->Bounds.MinR);
  int BestTotal = INT_MAX;
  SGRStar = 0;
  for (int SGR = 0; SGR <= MaxMinR; ++SGR) {
    int Total = SGR;
    for (const auto &B : Bundles)
      Total += std::max(B->Bounds.MinPR, B->Bounds.MinR - SGR);
    if (Total < BestTotal) {
      BestTotal = Total;
      SGRStar = SGR;
    }
  }
  return BestTotal;
}

} // namespace

SpillFallbackResult npral::allocateWithSpillFallback(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models, AllocationDecisionLog *Log,
    const InterAllocLimits &Limits, const SpillFallbackOptions &Opts) {
  NPRAL_TRACE_SPAN_ARGS("harden", "allocateWithSpillFallback",
                        {"program", MTP.Name},
                        {"nreg", std::to_string(Nreg)});
  const int Nthd = MTP.getNumThreads();
  SpillFallbackResult R;
  R.SpillsPerThread.assign(static_cast<size_t>(Nthd), 0);

  // First attempt: the plain allocator on the caller's own bundles. For
  // feasible inputs this is the *entire* computation — the fallback adds no
  // decision and the output is bit-identical to allocateInterThread.
  R.Attempts = 1;
  R.Inter = allocateInterThread(MTP, Nreg, Analyses, Models, Log, Limits);
  if (R.Inter.Success || R.Inter.FailCode != StatusCode::Infeasible) {
    R.Degraded = MTP;
    return R;
  }

  MetricsRegistry::global().counter("harden.spill_fallbacks").increment();

  auto cancelled = [&]() {
    return Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed);
  };
  auto modelOf = [&](int T) {
    return static_cast<size_t>(T) < Models.size()
               ? Models[static_cast<size_t>(T)]
               : CostModel();
  };

  // Degradation works on private renamed copies; renaming is idempotent and
  // spill rewriting preserves one-register-per-live-range (victims vanish,
  // temporaries are born single-def/single-use), so bundles can be
  // recomputed without re-renaming and the no-spill marks stay aligned
  // with register IDs across rounds.
  std::vector<Program> Work;
  std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
  std::vector<std::vector<char>> NoSpill(static_cast<size_t>(Nthd));
  std::vector<std::vector<int64_t>> SlotOf(static_cast<size_t>(Nthd));
  std::vector<int64_t> NextSlot(static_cast<size_t>(Nthd), 0);
  for (int T = 0; T < Nthd; ++T) {
    Work.push_back(renameLiveRanges(MTP.Threads[static_cast<size_t>(T)]));
    if (static_cast<size_t>(T) < Analyses.size() &&
        Analyses[static_cast<size_t>(T)])
      Bundles.push_back(Analyses[static_cast<size_t>(T)]);
    else
      Bundles.push_back(std::make_shared<ThreadAnalysisBundle>(
          computeThreadAnalysisBundle(Work.back())));
    NoSpill[static_cast<size_t>(T)].assign(
        static_cast<size_t>(Work.back().NumRegs), 0);
  }

  auto failInfeasible = [&](const std::string &Why) {
    R.Inter = InterThreadResult();
    R.Inter.FailReason = Why;
    R.Inter.FailCode = StatusCode::Infeasible;
    if (Log) {
      *Log = AllocationDecisionLog();
      Log->Success = false;
      Log->FailReason = Why;
    }
    return R;
  };

  while (true) {
    if (cancelled()) {
      R.Inter = InterThreadResult();
      R.Inter.FailReason = "allocation cancelled (deadline exceeded)";
      R.Inter.FailCode = StatusCode::DeadlineExceeded;
      return R;
    }

    int SGRStar = 0;
    const int Floor = feasibilityFloor(Bundles, SGRStar);
    if (Floor <= Nreg && R.UsedSpilling) {
      // The bounds fit; retry the real allocator on the degraded threads.
      if (Log)
        *Log = AllocationDecisionLog();
      MultiThreadProgram Cur;
      Cur.Name = MTP.Name;
      Cur.Threads = Work;
      ++R.Attempts;
      R.Inter = allocateInterThread(Cur, Nreg, Bundles, Models, Log, Limits);
      if (R.Inter.Success || R.Inter.FailCode != StatusCode::Infeasible) {
        R.Degraded = std::move(Cur);
        if (R.Inter.Success)
          MetricsRegistry::global()
              .counter("harden.degraded_allocations")
              .increment();
        return R;
      }
      // Bounds said feasible but the allocator disagreed (it may hit its
      // own internal limits); keep demoting.
    }

    if (R.SpilledRanges >= Opts.MaxSpills)
      return failInfeasible(
          "register requirement cannot be reduced to fit Nreg=" +
          std::to_string(Nreg) + " within " +
          std::to_string(Opts.MaxSpills) + " spills");

    // Choose the thread binding the floor at the optimal window, preferring
    // the largest contribution (ties to the lowest thread ID), and demote
    // the cheapest live range attacking its binding constraint. If a
    // thread's candidate set is exhausted, fall through to the next worst.
    std::vector<int> Order(static_cast<size_t>(Nthd));
    for (int T = 0; T < Nthd; ++T)
      Order[static_cast<size_t>(T)] = T;
    auto contribution = [&](int T) {
      const RegBounds &B = Bundles[static_cast<size_t>(T)]->Bounds;
      return std::max(B.MinPR, B.MinR - SGRStar);
    };
    std::stable_sort(Order.begin(), Order.end(), [&](int A, int B) {
      return contribution(A) > contribution(B);
    });

    int VictimThread = -1;
    Reg Victim = NoReg;
    for (int T : Order) {
      const ThreadAnalysisBundle &Bd = *Bundles[static_cast<size_t>(T)];
      const Program &P = Work[static_cast<size_t>(T)];
      const std::vector<char> &NS = NoSpill[static_cast<size_t>(T)];
      const bool BoundaryBound = Bd.Bounds.MinPR >= Bd.Bounds.MinR - SGRStar;
      BitVector Primary = BoundaryBound
                              ? maxCrossingSet(Bd.TA, P.NumRegs)
                              : maxPressureSet(P, Bd.TA);
      Victim = cheapestVictim(P, modelOf(T), NS, Primary);
      if (Victim == NoReg) {
        BitVector Secondary = BoundaryBound
                                  ? maxPressureSet(P, Bd.TA)
                                  : maxCrossingSet(Bd.TA, P.NumRegs);
        Victim = cheapestVictim(P, modelOf(T), NS, Secondary);
      }
      if (Victim != NoReg) {
        VictimThread = T;
        break;
      }
    }
    if (VictimThread < 0)
      return failInfeasible("no spillable live range remains (Nreg=" +
                            std::to_string(Nreg) + ")");

    // Demote the victim: per-thread disjoint scratch windows keep degraded
    // threads from racing on spill memory.
    Program &P = Work[static_cast<size_t>(VictimThread)];
    std::vector<int64_t> &Slots = SlotOf[static_cast<size_t>(VictimThread)];
    Slots.resize(static_cast<size_t>(P.NumRegs), 0);
    Slots[static_cast<size_t>(Victim)] =
        Opts.SlotBase + VictimThread * Opts.SlotStride +
        NextSlot[static_cast<size_t>(VictimThread)]++;
    SpillRewrite SR = insertSpillCode(P, {Victim}, Slots);
    std::vector<char> &NS = NoSpill[static_cast<size_t>(VictimThread)];
    NS.resize(static_cast<size_t>(P.NumRegs), 0);
    NS[static_cast<size_t>(Victim)] = 1;
    for (Reg T : SR.Temps)
      NS[static_cast<size_t>(T)] = 1;
    R.SpillLoads += SR.Loads;
    R.SpillStores += SR.Stores;
    ++R.SpilledRanges;
    ++R.SpillsPerThread[static_cast<size_t>(VictimThread)];
    R.UsedSpilling = true;
    MetricsRegistry::global().counter("harden.spilled_ranges").increment();
    Bundles[static_cast<size_t>(VictimThread)] =
        std::make_shared<ThreadAnalysisBundle>(computeThreadAnalysisBundle(P));
  }
}
