//===- FaultInjector.h - Deterministic fault injection ----------*- C++ -*-===//
///
/// \file
/// Deterministic fault injection for robustness testing. A FaultInjector is
/// configured from a spec string
///
///   <site>[,<site>...]@<rate>#<seed>
///
/// e.g. `parse,alloc@50#42` (fail parse and alloc probes 50% of the time,
/// seed 42) or `all@100#1` (fail every probe at every site). Valid sites are
/// `parse`, `analysis`, `cache`, `alloc`; `all` expands to every site.
///
/// Whether a given probe fails is a pure function of (seed, site, item):
/// `fnv1a(seed, site, item) % 100 < rate`. There is no global counter and no
/// hidden state, so a probe fires identically across runs, across thread
/// interleavings, and under `--jobs N` for any N — which is what lets CI
/// assert exact failed[] reports.
///
/// The injector is wired through explicit probe calls (`check(site, item)`)
/// at the stage entry points of the batch pipeline and the npralc driver; a
/// disabled injector (default) makes every probe a no-op. The spec comes
/// from `--fault-inject` or the NPRAL_FAULT_INJECT environment variable.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_HARDEN_FAULTINJECTOR_H
#define NPRAL_HARDEN_FAULTINJECTOR_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace npral {

class FaultInjector {
public:
  /// A disabled injector: every probe succeeds.
  FaultInjector() = default;

  /// Parse a spec string (see file comment). Fails with ParseError on
  /// malformed specs, unknown sites, or a rate outside [0, 100].
  static ErrorOr<FaultInjector> parse(const std::string &Spec);

  /// Build from the NPRAL_FAULT_INJECT environment variable; disabled when
  /// the variable is unset or empty. A malformed value is a fatal error —
  /// silently ignoring it would make a CI matrix pass vacuously.
  static FaultInjector fromEnv();

  /// The canonical site names, in probe order.
  static const std::vector<std::string> &allSites();

  bool enabled() const { return Rate > 0 && !Sites.empty(); }

  /// True when the probe at \p Site for \p Item (e.g. an input path) should
  /// fail. Deterministic in (seed, site, item).
  bool shouldFail(const std::string &Site, const std::string &Item) const;

  /// Status-flavoured probe: an error with StatusCode::FaultInjected when
  /// shouldFail, success otherwise.
  Status check(const std::string &Site, const std::string &Item) const;

  int rate() const { return Rate; }
  uint64_t seed() const { return Seed; }
  const std::vector<std::string> &sites() const { return Sites; }

private:
  std::vector<std::string> Sites; ///< Empty = disabled.
  int Rate = 0;                   ///< Percent of probes that fail, 0-100.
  uint64_t Seed = 0;
};

} // namespace npral

#endif // NPRAL_HARDEN_FAULTINJECTOR_H
