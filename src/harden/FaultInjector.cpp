//===- FaultInjector.cpp --------------------------------------------------===//

#include "harden/FaultInjector.h"

#include <algorithm>
#include <cstdlib>

using namespace npral;

namespace {

uint64_t fnv1a(uint64_t Hash, const std::string &S) {
  for (char C : S) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 1099511628211ull;
  }
  return Hash;
}

uint64_t fnv1aInit(uint64_t Seed) {
  uint64_t Hash = 14695981039346656037ull;
  for (int I = 0; I < 8; ++I) {
    Hash ^= (Seed >> (I * 8)) & 0xff;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

const std::vector<std::string> &FaultInjector::allSites() {
  static const std::vector<std::string> Sites = {"parse", "analysis", "cache",
                                                 "alloc"};
  return Sites;
}

ErrorOr<FaultInjector> FaultInjector::parse(const std::string &Spec) {
  auto err = [&](const std::string &Why) {
    return Status::error(StatusCode::ParseError,
                         "invalid fault-injection spec '" + Spec + "': " + Why);
  };

  size_t At = Spec.find('@');
  if (At == std::string::npos)
    return err("expected <sites>@<rate>#<seed>");
  size_t Hash = Spec.find('#', At);
  if (Hash == std::string::npos)
    return err("expected #<seed> after the rate");

  FaultInjector FI;

  // Sites.
  std::string SiteList = Spec.substr(0, At);
  size_t Pos = 0;
  while (Pos <= SiteList.size()) {
    size_t Comma = SiteList.find(',', Pos);
    std::string Site = SiteList.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Site == "all") {
      FI.Sites = allSites();
    } else if (std::find(allSites().begin(), allSites().end(), Site) !=
               allSites().end()) {
      if (std::find(FI.Sites.begin(), FI.Sites.end(), Site) == FI.Sites.end())
        FI.Sites.push_back(Site);
    } else {
      return err("unknown site '" + Site + "'");
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }

  // Rate.
  std::string RateStr = Spec.substr(At + 1, Hash - At - 1);
  char *End = nullptr;
  long Rate = std::strtol(RateStr.c_str(), &End, 10);
  if (RateStr.empty() || *End != '\0' || Rate < 0 || Rate > 100)
    return err("rate must be an integer in [0, 100]");
  FI.Rate = static_cast<int>(Rate);

  // Seed.
  std::string SeedStr = Spec.substr(Hash + 1);
  unsigned long long Seed = std::strtoull(SeedStr.c_str(), &End, 10);
  if (SeedStr.empty() || *End != '\0')
    return err("seed must be an unsigned integer");
  FI.Seed = Seed;

  return FI;
}

FaultInjector FaultInjector::fromEnv() {
  const char *Spec = std::getenv("NPRAL_FAULT_INJECT");
  if (!Spec || !*Spec)
    return FaultInjector();
  ErrorOr<FaultInjector> FI = parse(Spec);
  if (!FI)
    reportFatalError(FI.status().str());
  return FI.take();
}

bool FaultInjector::shouldFail(const std::string &Site,
                               const std::string &Item) const {
  if (!enabled())
    return false;
  if (std::find(Sites.begin(), Sites.end(), Site) == Sites.end())
    return false;
  uint64_t Hash = fnv1aInit(Seed);
  Hash = fnv1a(Hash, Site);
  Hash = fnv1a(Hash, Item);
  return Hash % 100 < static_cast<uint64_t>(Rate);
}

Status FaultInjector::check(const std::string &Site,
                            const std::string &Item) const {
  if (!shouldFail(Site, Item))
    return Status::success();
  return Status::error(StatusCode::FaultInjected,
                       "injected fault at site '" + Site + "' for '" + Item +
                           "'");
}
