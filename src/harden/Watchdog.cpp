//===- Watchdog.cpp -------------------------------------------------------===//

#include "harden/Watchdog.h"

#include <chrono>

using namespace npral;

Watchdog::Watchdog(int DeadlineMs) {
  if (DeadlineMs <= 0)
    return;
  Timer = std::thread([this, DeadlineMs] {
    std::unique_lock<std::mutex> Lock(M);
    if (!CV.wait_for(Lock, std::chrono::milliseconds(DeadlineMs),
                     [this] { return Stop; }))
      Fired.store(true, std::memory_order_relaxed);
  });
}

Watchdog::~Watchdog() { disarm(); }

void Watchdog::disarm() {
  if (!Timer.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  CV.notify_all();
  Timer.join();
}
