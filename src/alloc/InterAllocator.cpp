//===- InterAllocator.cpp -------------------------------------------------===//

#include "alloc/InterAllocator.h"

#include "trace/MetricsRegistry.h"
#include "trace/TraceEngine.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace npral;

MultiThreadProgram npral::materializePhysical(
    const std::vector<const Program *> &ColorPrograms,
    const std::vector<int> &PRs, int SGR, int Nreg, const std::string &Name) {
  assert(ColorPrograms.size() == PRs.size() && "size mismatch");
  MultiThreadProgram Physical;
  Physical.Name = Name;

  int SharedBase = std::accumulate(PRs.begin(), PRs.end(), 0);
  assert(SharedBase + SGR <= Nreg && "allocation exceeds register file");

  int PrivateBase = 0;
  for (size_t T = 0; T < ColorPrograms.size(); ++T) {
    const Program &CP = *ColorPrograms[T];
    const int PR = PRs[T];
    auto mapColor = [&](Reg C) -> Reg {
      assert(C >= 0 && C < CP.NumRegs && "color out of range");
      if (C < PR)
        return PrivateBase + C;
      assert(C - PR < SGR && "shared color beyond SGR");
      return SharedBase + (C - PR);
    };

    Program Phys;
    Phys.Name = CP.Name;
    Phys.NumRegs = Nreg;
    Phys.IsPhysical = true;
    Phys.EntryBlock = CP.EntryBlock;
    for (int B = 0; B < CP.getNumBlocks(); ++B) {
      const BasicBlock &BB = CP.block(B);
      int NewB = Phys.addBlock(CP.blockName(BB.Id));
      Phys.block(NewB).FallThrough = BB.FallThrough;
      for (const Instruction &I : BB.Instrs) {
        Instruction NewI = I;
        if (I.Def != NoReg)
          NewI.Def = mapColor(I.Def);
        if (I.Use1 != NoReg)
          NewI.Use1 = mapColor(I.Use1);
        if (I.Use2 != NoReg)
          NewI.Use2 = mapColor(I.Use2);
        Phys.block(NewB).Instrs.push_back(NewI);
      }
    }
    for (Reg C : CP.EntryLiveRegs)
      Phys.EntryLiveRegs.push_back(mapColor(C));
    Physical.Threads.push_back(std::move(Phys));
    PrivateBase += PR;
  }
  return Physical;
}

namespace {

/// Completion fallback for the Fig. 8 loop: sweep the shared-window size.
/// For each SGR, every thread takes the smallest PR with a feasible
/// (PR, SGR) allocation; among fitting configurations the cheapest (by
/// total moves, then registers) wins. Returns false when no SGR fits.
bool sweepSharedWindow(
    std::vector<std::unique_ptr<IntraThreadAllocator>> &Intras, int Nreg,
    std::vector<int> &PR, std::vector<int> &SR) {
  const int Nthd = static_cast<int>(Intras.size());
  int MaxSGR = 0;
  for (const auto &Intra : Intras)
    MaxSGR = std::max(MaxSGR, Intra->getMaxR());

  bool Found = false;
  int64_t BestCost = 0;
  int BestTotal = 0;
  std::vector<int> BestPR, BestSR;
  for (int SGR = 0; SGR <= MaxSGR; ++SGR) {
    std::vector<int> CandPR(static_cast<size_t>(Nthd));
    int64_t Cost = 0;
    int SumPR = 0;
    bool Feasible = true;
    for (int T = 0; T < Nthd && Feasible; ++T) {
      IntraThreadAllocator &Intra = *Intras[static_cast<size_t>(T)];
      int Lo = std::max(Intra.getMinPR(), Intra.getMinR() - SGR);
      bool ThreadOk = false;
      for (int P = Lo; P <= Intra.getMaxPR(); ++P) {
        const IntraResult &R = Intra.allocate(P, SGR);
        if (!R.Feasible)
          continue;
        CandPR[static_cast<size_t>(T)] = P;
        Cost += R.WeightedCost;
        SumPR += P;
        ThreadOk = true;
        break;
      }
      Feasible = ThreadOk;
    }
    if (!Feasible || SumPR + SGR > Nreg)
      continue;
    int Total = SumPR + SGR;
    if (!Found || Cost < BestCost ||
        (Cost == BestCost && Total < BestTotal)) {
      Found = true;
      BestCost = Cost;
      BestTotal = Total;
      BestPR = CandPR;
      BestSR.assign(static_cast<size_t>(Nthd), SGR);
    }
  }
  if (!Found)
    return false;
  PR = BestPR;
  SR = BestSR;
  return true;
}

} // namespace

InterThreadResult npral::allocateInterThread(const MultiThreadProgram &MTP,
                                             int Nreg) {
  return allocateInterThread(MTP, Nreg, {});
}

InterThreadResult npral::allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses) {
  return allocateInterThread(MTP, Nreg, Analyses, {});
}

InterThreadResult npral::allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models) {
  return allocateInterThread(MTP, Nreg, Analyses, Models, nullptr);
}

InterThreadResult npral::allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models, AllocationDecisionLog *Log) {
  return allocateInterThread(MTP, Nreg, Analyses, Models, Log,
                             InterAllocLimits());
}

InterThreadResult npral::allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models, AllocationDecisionLog *Log,
    const InterAllocLimits &Limits) {
  NPRAL_TRACE_SPAN_ARGS("alloc", "allocateInterThread",
                        {"program", MTP.Name},
                        {"threads", std::to_string(MTP.getNumThreads())},
                        {"nreg", std::to_string(Nreg)});
  InterThreadResult Result;
  const int Nthd = MTP.getNumThreads();
  auto cancelled = [&]() {
    return Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed);
  };
  auto failCancelled = [&]() {
    Result.FailReason = "allocation cancelled (deadline exceeded)";
    Result.FailCode = StatusCode::DeadlineExceeded;
    if (Log) {
      Log->Success = false;
      Log->FailReason = Result.FailReason;
    }
    return Result;
  };
  if (Nthd == 0) {
    Result.FailReason = "no threads";
    Result.FailCode = StatusCode::InvalidIR;
    if (Log) {
      Log->Success = false;
      Log->FailReason = Result.FailReason;
    }
    return Result;
  }

  // Build per-thread intra allocators and start from the move-free upper
  // bounds (Fig. 8 lines 1-4).
  std::vector<std::unique_ptr<IntraThreadAllocator>> Intras;
  std::vector<int> PR(static_cast<size_t>(Nthd));
  std::vector<int> SR(static_cast<size_t>(Nthd));
  for (int T = 0; T < Nthd; ++T) {
    const Program &P = MTP.Threads[static_cast<size_t>(T)];
    CostModel CM = static_cast<size_t>(T) < Models.size()
                       ? Models[static_cast<size_t>(T)]
                       : CostModel();
    if (static_cast<size_t>(T) < Analyses.size() &&
        Analyses[static_cast<size_t>(T)])
      Intras.push_back(std::make_unique<IntraThreadAllocator>(
          P, *Analyses[static_cast<size_t>(T)], std::move(CM)));
    else
      Intras.push_back(
          std::make_unique<IntraThreadAllocator>(P, std::move(CM)));
    if (Log)
      Intras.back()->setDecisionLog(Log, T);
    const RegBounds &B = Intras.back()->getBounds();
    PR[static_cast<size_t>(T)] = B.MaxPR;
    SR[static_cast<size_t>(T)] = B.MaxR - B.MaxPR;
  }
  if (Log) {
    Log->Nthd = Nthd;
    Log->Nreg = Nreg;
    Log->InitialPR = PR;
    Log->InitialSR = SR;
  }

  auto requirement = [&]() {
    int Sum = std::accumulate(PR.begin(), PR.end(), 0);
    int MaxSR = *std::max_element(SR.begin(), SR.end());
    return Sum + MaxSR;
  };
  auto costOf = [&](int T) -> int64_t {
    const IntraResult &IR =
        Intras[static_cast<size_t>(T)]->allocate(PR[static_cast<size_t>(T)],
                                                 SR[static_cast<size_t>(T)]);
    assert(IR.Feasible && "current configuration must stay feasible");
    return IR.WeightedCost;
  };

  // Greedy reduction loop (Fig. 8 lines 5-16).
  int StepIndex = 0;
  while (requirement() > Nreg) {
    if (cancelled())
      return failCancelled();
    int BestKind = -1; // 0 = reduce PR of BestThread, 1 = reduce max SRs.
    int BestThread = -1;
    int64_t BestDelta = 0;
    ReductionStep Step;
    Step.StepIndex = ++StepIndex;
    Step.RequirementBefore = requirement();

    for (int T = 0; T < Nthd; ++T) {
      const RegBounds &B = Intras[static_cast<size_t>(T)]->getBounds();
      int CurPR = PR[static_cast<size_t>(T)];
      int CurSR = SR[static_cast<size_t>(T)];
      if (CurPR <= B.MinPR || CurPR + CurSR <= B.MinR)
        continue;
      const IntraResult &Candidate =
          Intras[static_cast<size_t>(T)]->allocate(CurPR - 1, CurSR);
      if (!Candidate.Feasible)
        continue;
      int64_t Delta = Candidate.WeightedCost - costOf(T);
      if (Log)
        Step.Bids.push_back({ReductionBid::ReducePR, T, Delta});
      if (BestKind < 0 || Delta < BestDelta) {
        BestKind = 0;
        BestThread = T;
        BestDelta = Delta;
      }
    }

    {
      int MaxSR = *std::max_element(SR.begin(), SR.end());
      bool AllReducible = MaxSR > 0;
      int64_t Delta = 0;
      for (int T = 0; T < Nthd && AllReducible; ++T) {
        if (SR[static_cast<size_t>(T)] != MaxSR)
          continue;
        const RegBounds &B = Intras[static_cast<size_t>(T)]->getBounds();
        if (PR[static_cast<size_t>(T)] + SR[static_cast<size_t>(T)] <=
            B.MinR) {
          AllReducible = false;
          break;
        }
        const IntraResult &Candidate = Intras[static_cast<size_t>(T)]->allocate(
            PR[static_cast<size_t>(T)], SR[static_cast<size_t>(T)] - 1);
        if (!Candidate.Feasible) {
          AllReducible = false;
          break;
        }
        Delta += Candidate.WeightedCost - costOf(T);
      }
      if (Log && AllReducible)
        Step.Bids.push_back({ReductionBid::ReduceSharedRegs, -1, Delta});
      if (AllReducible && (BestKind < 0 || Delta < BestDelta)) {
        BestKind = 1;
        BestDelta = Delta;
      }
    }

    if (BestKind < 0) {
      // The pure-reduction loop is stuck: every single step either violates
      // a thread's MinR or fails. This happens when the optimum requires
      // *trading* private for shared registers across several threads at
      // once (e.g. every thread moving from (PR, SR) to (PR-1, SR+1) — the
      // total only drops after all of them convert). Fall back to a direct
      // sweep over the shared-window size SGR: for each candidate SGR every
      // thread takes its smallest feasible PR, which is complete over the
      // per-thread feasibility frontier. Fig. 8 does not include this step;
      // see DESIGN.md ("extensions").
      if (!sweepSharedWindow(Intras, Nreg, PR, SR)) {
        Result.FailReason =
            "register requirement cannot be reduced to fit Nreg=" +
            std::to_string(Nreg);
        Result.FailCode = StatusCode::Infeasible;
        if (Log) {
          Log->Success = false;
          Log->FailReason = Result.FailReason;
        }
        return Result;
      }
      MetricsRegistry::global().counter("alloc.sweep_fallbacks").increment();
      if (Log) {
        Step.Chosen = ReductionStep::ChoseSweepFallback;
        Step.RequirementAfter = requirement();
        Step.PRAfter = PR;
        Step.SRAfter = SR;
        Log->Reductions.push_back(std::move(Step));
      }
      break;
    }
    if (BestKind == 0) {
      --PR[static_cast<size_t>(BestThread)];
    } else {
      int MaxSR = *std::max_element(SR.begin(), SR.end());
      for (int T = 0; T < Nthd; ++T)
        if (SR[static_cast<size_t>(T)] == MaxSR)
          --SR[static_cast<size_t>(T)];
    }
    MetricsRegistry::global().counter("alloc.reduction_steps").increment();
    if (Log) {
      Step.Chosen =
          BestKind == 0 ? ReductionStep::ChosePR : ReductionStep::ChoseSharedRegs;
      Step.VictimThread = BestKind == 0 ? BestThread : -1;
      Step.ChosenDelta = BestDelta;
      Step.RequirementAfter = requirement();
      Step.PRAfter = PR;
      Step.SRAfter = SR;
      Log->Reductions.push_back(std::move(Step));
    }
  }

  // Profile-guided rebalancing (weighted models only). The Fig. 8 loop is
  // frequency-blind in two ways: it stops at the first configuration whose
  // caps fit (leaving any remaining budget idle), and its greedy single
  // steps never revisit a squeeze that later turns out to be the expensive
  // one. With execution frequencies we can fix both after the fact:
  //   - exchange: shift one private register from a thread where it saves
  //     little dynamic cost to a thread where it saves a lot (net register
  //     use unchanged);
  //   - reinvest: if the caps fit with room to spare, raise the PR of the
  //     thread with the largest weighted saving per register, or widen the
  //     shared window for everyone.
  // Every applied step strictly decreases the total weighted cost, so the
  // pass terminates. Under unit costs the pass is skipped entirely and the
  // result is identical to the frequency-blind allocation.
  bool AnyWeighted = false;
  for (const CostModel &CM : Models)
    if (!CM.isUnit())
      AnyWeighted = true;
  while (AnyWeighted) {
    if (cancelled())
      return failCancelled();
    const bool HaveSlack = requirement() < Nreg;
    int BestKind = -1; // 0 = raise PR, 1 = widen SRs, 2 = exchange PR.
    int BestUp = -1, BestDown = -1;
    int64_t BestSave = 0;

    auto canLower = [&](int T) {
      const RegBounds &B = Intras[static_cast<size_t>(T)]->getBounds();
      if (PR[static_cast<size_t>(T)] <= B.MinPR ||
          PR[static_cast<size_t>(T)] + SR[static_cast<size_t>(T)] <= B.MinR)
        return false;
      return Intras[static_cast<size_t>(T)]
          ->allocate(PR[static_cast<size_t>(T)] - 1,
                     SR[static_cast<size_t>(T)])
          .Feasible;
    };

    for (int T = 0; T < Nthd; ++T) {
      const RegBounds &B = Intras[static_cast<size_t>(T)]->getBounds();
      if (PR[static_cast<size_t>(T)] >= B.MaxPR)
        continue;
      const IntraResult &Raised = Intras[static_cast<size_t>(T)]->allocate(
          PR[static_cast<size_t>(T)] + 1, SR[static_cast<size_t>(T)]);
      if (!Raised.Feasible)
        continue;
      const int64_t Gain = costOf(T) - Raised.WeightedCost;
      if (Gain <= 0)
        continue;
      if (HaveSlack && Gain > BestSave) {
        BestKind = 0;
        BestUp = T;
        BestSave = Gain;
      }
      for (int D = 0; D < Nthd; ++D) {
        if (D == T || !canLower(D))
          continue;
        const IntraResult &Lowered = Intras[static_cast<size_t>(D)]->allocate(
            PR[static_cast<size_t>(D)] - 1, SR[static_cast<size_t>(D)]);
        const int64_t Save = Gain - (Lowered.WeightedCost - costOf(D));
        if (Save > BestSave) {
          BestKind = 2;
          BestUp = T;
          BestDown = D;
          BestSave = Save;
        }
      }
    }

    if (HaveSlack) {
      int64_t Save = 0;
      bool Ok = true;
      for (int T = 0; T < Nthd && Ok; ++T) {
        const IntraResult &Widened = Intras[static_cast<size_t>(T)]->allocate(
            PR[static_cast<size_t>(T)], SR[static_cast<size_t>(T)] + 1);
        if (!Widened.Feasible) {
          Ok = false;
          break;
        }
        Save += costOf(T) - Widened.WeightedCost;
      }
      if (Ok && Save > BestSave) {
        BestKind = 1;
        BestSave = Save;
      }
    }

    if (BestKind < 0)
      break;
    if (BestKind == 0) {
      ++PR[static_cast<size_t>(BestUp)];
    } else if (BestKind == 1) {
      for (int T = 0; T < Nthd; ++T)
        ++SR[static_cast<size_t>(T)];
    } else {
      ++PR[static_cast<size_t>(BestUp)];
      --PR[static_cast<size_t>(BestDown)];
    }
    MetricsRegistry::global().counter("alloc.rebalance_steps").increment();
    if (Log) {
      RebalanceStep Step;
      Step.K = BestKind == 0   ? RebalanceStep::RaisePR
               : BestKind == 1 ? RebalanceStep::WidenSharedRegs
                               : RebalanceStep::ExchangePR;
      Step.UpThread = BestKind == 1 ? -1 : BestUp;
      Step.DownThread = BestKind == 2 ? BestDown : -1;
      Step.Saving = BestSave;
      Step.PRAfter = PR;
      Step.SRAfter = SR;
      Log->Rebalances.push_back(std::move(Step));
    }
  }

  // Materialise (Fig. 8 lines 18-20).
  Result.SGR = *std::max_element(SR.begin(), SR.end());
  std::vector<const Program *> ColorPrograms;
  int PrivateBase = 0;
  for (int T = 0; T < Nthd; ++T) {
    const IntraResult &IR =
        Intras[static_cast<size_t>(T)]->allocate(PR[static_cast<size_t>(T)],
                                                 SR[static_cast<size_t>(T)]);
    assert(IR.Feasible && "converged configuration must be feasible");
    ThreadAllocation TAl;
    TAl.PR = PR[static_cast<size_t>(T)];
    TAl.SR = SR[static_cast<size_t>(T)];
    TAl.MoveCost = IR.MoveCost;
    TAl.WeightedCost = IR.WeightedCost;
    TAl.Strategy = IR.Strategy;
    TAl.PrivateBase = PrivateBase;
    TAl.Bounds = Intras[static_cast<size_t>(T)]->getBounds();
    PrivateBase += TAl.PR;
    Result.Threads.push_back(std::move(TAl));
    Result.TotalMoveCost += IR.MoveCost;
    Result.TotalWeightedCost += IR.WeightedCost;
    ColorPrograms.push_back(&IR.ColorProgram);
  }
  Result.SharedBase = PrivateBase;
  Result.RegistersUsed = PrivateBase + Result.SGR;
  // The SR values each thread converged to may differ; the shared window is
  // sized by the maximum, and every thread's shared colors fit inside it.
  Result.Physical = materializePhysical(
      ColorPrograms, PR, Result.SGR, std::max(Nreg, Result.RegistersUsed),
      MTP.Name);
  for (Program &T : Result.Physical.Threads)
    T.NumRegs = std::max(Nreg, Result.RegistersUsed);
  Result.Success = true;
  if (Log) {
    Log->Success = true;
    Log->FinalPR = PR;
    Log->FinalSR = SR;
    Log->SGR = Result.SGR;
    Log->RegistersUsed = Result.RegistersUsed;
    Log->TotalWeightedCost = Result.TotalWeightedCost;
  }
  return Result;
}

SRAResult npral::solveSRA(const Program &P, int Nthd, int Nreg,
                          bool RequireZeroCost) {
  SRAResult Result;
  IntraThreadAllocator Intra(P);
  const RegBounds &B = Intra.getBounds();

  bool Found = false;
  for (int PR = B.MinPR; PR <= B.MaxPR; ++PR) {
    if (PR * Nthd > Nreg)
      break;
    int SRBudget = Nreg - Nthd * PR;
    int SRLo = std::max(0, B.MinR - PR);
    int SRHi = std::min(SRBudget, std::max(B.MaxR - PR, SRLo));
    for (int SR = SRLo; SR <= SRHi; ++SR) {
      const IntraResult &IR = Intra.allocate(PR, SR);
      if (!IR.Feasible)
        continue;
      if (RequireZeroCost && IR.MoveCost > 0)
        continue;
      int Total = Nthd * PR + SR;
      bool Better = !Found || Total < Result.TotalRegisters ||
                    (Total == Result.TotalRegisters && PR < Result.PR);
      if (Better) {
        Result.PR = PR;
        Result.SR = SR;
        Result.MoveCost = IR.MoveCost;
        Result.TotalRegisters = Total;
        Found = true;
      }
      break; // Larger SR at same PR only raises the total.
    }
  }
  Result.Success = Found;
  if (!Found)
    Result.FailReason = "no feasible (PR, SR) within Nreg";
  return Result;
}
