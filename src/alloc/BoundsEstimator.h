//===- BoundsEstimator.h - Register requirement bounds ----------*- C++ -*-===//
///
/// \file
/// Estimates the four per-thread register bounds of paper §5:
///
///  * MinR  = RegPmax: the max number of co-live values at any point —
///    reachable with enough live range splitting (Lemma 1 extension);
///  * MinPR = RegPCSBmax: the max number of values live across a single
///    CSB — reachable with moves around CSBs (Lemma 1);
///  * MaxPR, MaxR: colors needed *without* inserting any move, computed by
///    the region-based scheme of Fig. 7: color the BIG minimally, color each
///    IIG minimally, then merge and resolve conflict edges by recoloring,
///    one-level neighbor adjustment, or (last resort) growing R.
///
/// MaxPR is minimised first: extra private registers cost every thread,
/// while extra shared registers only matter for the max-SR thread.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_BOUNDSESTIMATOR_H
#define NPRAL_ALLOC_BOUNDSESTIMATOR_H

#include "alloc/ColoringUtils.h"
#include "analysis/InterferenceGraph.h"

namespace npral {

/// Register requirement bounds for one thread.
struct RegBounds {
  int MinPR = 0;
  int MinR = 0;
  int MaxPR = 0;
  int MaxR = 0;
  /// A move-free coloring realising (MaxPR, MaxR): boundary nodes hold
  /// colors < MaxPR, all nodes colors < MaxR. Usable as a starting context
  /// for the intra-thread allocator.
  Coloring Colors;
};

/// Compute the bounds for an analysed thread.
RegBounds estimateRegBounds(const ThreadAnalysis &TA);

} // namespace npral

#endif // NPRAL_ALLOC_BOUNDSESTIMATOR_H
