//===- ParallelCopy.h - Sequentialising parallel register copies -*- C++ -*-===//
///
/// \file
/// The allocators reconcile register states at CFG junctions and context
/// switch boundaries with *parallel copies*: a partial permutation
/// { To := From } over register colors that must appear to execute
/// simultaneously. This component lowers such a copy to straight-line
/// instructions:
///
///  * acyclic chains become plain `mov`s (targets emitted once they are no
///    longer needed as sources);
///  * cycles use a scratch color when one is free;
///  * cycles with no scratch are rotated in place with three-`xor` swaps,
///    so lowering never fails.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_PARALLELCOPY_H
#define NPRAL_ALLOC_PARALLELCOPY_H

#include "ir/Instruction.h"

#include <vector>

namespace npral {

/// One element of a parallel copy: the value currently in color \p From
/// must end up in color \p To.
struct Copy {
  int From;
  int To;
};

/// Append a three-xor in-place swap of colors \p A and \p B.
void appendXorSwap(std::vector<Instruction> &Out, int A, int B);

/// Lower the parallel copy \p Pending into \p Out. \p Scratch is a color
/// known to be dead at this point, or -1 when none is. The sources of
/// \p Pending must be distinct and the targets must be distinct (a partial
/// permutation). Returns the number of instructions appended.
int appendParallelCopy(std::vector<Instruction> &Out, std::vector<Copy> Pending,
                       int Scratch);

} // namespace npral

#endif // NPRAL_ALLOC_PARALLELCOPY_H
