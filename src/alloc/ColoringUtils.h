//===- ColoringUtils.h - Greedy coloring primitives -------------*- C++ -*-===//
///
/// \file
/// Graph-coloring building blocks shared by the bounds estimator, the
/// intra-thread allocator and the Chaitin baseline: greedy coloring in
/// smallest-last order, per-node color constraints, and the paper's
/// one-level "try to recolor the neighbors" repair step.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_COLORINGUTILS_H
#define NPRAL_ALLOC_COLORINGUTILS_H

#include "analysis/InterferenceGraph.h"
#include "support/BitVector.h"

#include <vector>

namespace npral {

/// Sentinel for "node not colored".
constexpr int NoColor = -1;

/// A (partial) coloring over graph nodes.
using Coloring = std::vector<int>;

/// Greedily color \p Members of \p IG in smallest-last order with no color
/// limit; returns the number of colors used. Nodes outside Members keep
/// their existing color in \p Colors (and constrain their neighbors).
int colorMinimally(const InterferenceGraph &IG, const BitVector &Members,
                   Coloring &Colors);

/// Number of distinct colors used by the neighbors of \p Node (the paper's
/// NCN). Uncolored neighbors are ignored.
int neighborColorCount(const InterferenceGraph &IG, const Coloring &Colors,
                       int Node);

/// Smallest allowed color for \p Node not used by any neighbor, restricted
/// to [\p Lo, \p Hi); NoColor when none exists. With \p PreferFrom >= 0 the
/// search begins there and wraps (band biasing).
int pickFreeColor(const InterferenceGraph &IG, const Coloring &Colors,
                  int Node, int Lo, int Hi, int PreferFrom = -1);

/// Try to recolor \p Node into [Lo, Hi) by moving *one* already-colored
/// neighbor to a different color within that neighbor's own band. Bands are
/// supplied via \p BandLo/\p BandHi per node. Returns true on success (the
/// coloring is updated).
bool recolorViaNeighbor(const InterferenceGraph &IG, Coloring &Colors,
                        int Node, int Lo, int Hi,
                        const std::vector<int> &BandLo,
                        const std::vector<int> &BandHi);

/// Result of a constrained coloring attempt.
struct ConstrainedColoringResult {
  bool Success = false;
  Coloring Colors;
  /// First node that could not be colored (valid when !Success).
  int FailedNode = -1;
};

/// Color every referenced node of \p TA with per-class constraints: nodes
/// in \p TA.BoundaryNodes take colors in [0, PR); all nodes take colors in
/// [0, R). Boundary nodes are colored first (they are the scarcer class);
/// internal nodes prefer the shared band [PR, R) so that private registers
/// stay available. One round of neighbor repair is applied before failing.
ConstrainedColoringResult colorConstrained(const ThreadAnalysis &TA, int PR,
                                           int R);

} // namespace npral

#endif // NPRAL_ALLOC_COLORINGUTILS_H
