//===- SplitTransforms.cpp ------------------------------------------------===//

#include "alloc/SplitTransforms.h"

#include "ir/CFGUtils.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace npral;

namespace {

/// A pending insertion at (Block, Index); applied in descending index order
/// per block so earlier indices stay valid.
struct PendingInsert {
  int Block;
  int Index;
  Instruction Inst;
};

void applyInserts(Program &P, std::vector<PendingInsert> &Inserts) {
  std::stable_sort(Inserts.begin(), Inserts.end(),
                   [](const PendingInsert &A, const PendingInsert &B) {
                     if (A.Block != B.Block)
                       return A.Block < B.Block;
                     return A.Index > B.Index;
                   });
  for (const PendingInsert &PI : Inserts) {
    BasicBlock &BB = P.block(PI.Block);
    assert(PI.Index >= 0 &&
           PI.Index <= static_cast<int>(BB.Instrs.size()) && "bad insert");
    BB.Instrs.insert(BB.Instrs.begin() + PI.Index, PI.Inst);
  }
}

} // namespace

Reg npral::excludeNSR(Program &P, const ThreadAnalysis &TA, Reg V, int NSRId) {
  // First check V is referenced inside the NSR at all.
  bool Referenced = false;
  for (int B = 0; B < P.getNumBlocks() && !Referenced; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      bool UseIn = Inst.usesReg(V) && TA.NSRs.instrPreNSR(B, I) == NSRId;
      bool DefIn = Inst.Def == V && TA.NSRs.instrPostNSR(B, I) == NSRId;
      if (UseIn || DefIn) {
        Referenced = true;
        break;
      }
    }
  }
  if (!Referenced)
    return NoReg;

  Reg Fresh = P.addReg(P.getRegName(V) + ".x" + std::to_string(NSRId));

  // Rename references whose point lies in the NSR.
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      if (TA.NSRs.instrPreNSR(B, I) == NSRId) {
        if (Inst.Use1 == V)
          Inst.Use1 = Fresh;
        if (Inst.Use2 == V)
          Inst.Use2 = Fresh;
      }
      if (Inst.Def == V && TA.NSRs.instrPostNSR(B, I) == NSRId)
        Inst.Def = Fresh;
    }
  }

  // Reconciling moves at the CSBs V crosses.
  std::vector<PendingInsert> Inserts;
  for (const CSB &Boundary : TA.NSRs.getCSBs()) {
    if (!Boundary.LiveAcross.test(V))
      continue;
    // V enters the NSR across this boundary: copy into the fresh name just
    // after the context switch instruction.
    if (Boundary.PostNSR == NSRId)
      Inserts.push_back({Boundary.Block, Boundary.InstrIndex + 1,
                         Instruction::makeMov(Fresh, V)});
    // V leaves the NSR across this boundary: restore the original name just
    // before the context switch instruction.
    if (Boundary.PreNSR == NSRId)
      Inserts.push_back({Boundary.Block, Boundary.InstrIndex,
                         Instruction::makeMov(V, Fresh)});
  }

  // V live at program entry with the entry point inside the NSR: seed the
  // fresh name at the very start.
  const BitVector &EntryLive = TA.Liveness.blockLiveIn(P.getEntryBlock());
  if (EntryLive.test(V) &&
      TA.NSRs.pointNSR(P.getEntryBlock(), 0) == NSRId)
    Inserts.push_back(
        {P.getEntryBlock(), 0, Instruction::makeMov(Fresh, V)});

  applyInserts(P, Inserts);
  return Fresh;
}

int npral::estimateExcludeNSRMoves(const Program &P, const LivenessInfo &LI,
                                   const NSRInfo &NSRs, Reg V, int NSRId) {
  bool Referenced = false;
  for (int B = 0; B < P.getNumBlocks() && !Referenced; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      bool UseIn = Inst.usesReg(V) && NSRs.instrPreNSR(B, I) == NSRId;
      bool DefIn = Inst.Def == V && NSRs.instrPostNSR(B, I) == NSRId;
      if (UseIn || DefIn) {
        Referenced = true;
        break;
      }
    }
  }
  if (!Referenced)
    return -1;

  int Moves = 0;
  for (const CSB &Boundary : NSRs.getCSBs()) {
    if (!Boundary.LiveAcross.test(V))
      continue;
    if (Boundary.PostNSR == NSRId)
      ++Moves;
    if (Boundary.PreNSR == NSRId)
      ++Moves;
  }
  if (LI.blockLiveIn(P.getEntryBlock()).test(V) &&
      NSRs.pointNSR(P.getEntryBlock(), 0) == NSRId)
    ++Moves;
  return Moves;
}

int npral::estimateExcludeNSRMoves(const Program &P, const ThreadAnalysis &TA,
                                   Reg V, int NSRId) {
  return estimateExcludeNSRMoves(P, TA.Liveness, TA.NSRs, V, NSRId);
}

int64_t npral::estimateExcludeNSRMovesWeighted(const Program &P,
                                               const ThreadAnalysis &TA,
                                               Reg V, int NSRId,
                                               const CostModel &CM) {
  if (estimateExcludeNSRMoves(P, TA.Liveness, TA.NSRs, V, NSRId) < 0)
    return -1;
  int64_t Weighted = 0;
  for (const CSB &Boundary : TA.NSRs.getCSBs()) {
    if (!Boundary.LiveAcross.test(V))
      continue;
    if (Boundary.PostNSR == NSRId)
      Weighted += CM.blockWeight(Boundary.Block);
    if (Boundary.PreNSR == NSRId)
      Weighted += CM.blockWeight(Boundary.Block);
  }
  if (TA.Liveness.blockLiveIn(P.getEntryBlock()).test(V) &&
      TA.NSRs.pointNSR(P.getEntryBlock(), 0) == NSRId)
    Weighted += CM.blockWeight(P.getEntryBlock());
  return Weighted;
}

Reg npral::splitInBlock(Program &P, const ThreadAnalysis &TA, Reg V,
                        int BlockId) {
  BasicBlock &BB = P.block(BlockId);
  bool Referenced = false;
  for (const Instruction &Inst : BB.Instrs)
    if (Inst.Def == V || Inst.usesReg(V)) {
      Referenced = true;
      break;
    }
  if (!Referenced)
    return NoReg;

  Reg Fresh = P.addReg(P.getRegName(V) + ".b" + std::to_string(BlockId));

  bool LiveIn = TA.Liveness.blockLiveIn(BlockId).test(V);
  bool LiveOut = TA.Liveness.blockLiveOut(BlockId).test(V);

  for (Instruction &Inst : BB.Instrs) {
    if (Inst.Use1 == V)
      Inst.Use1 = Fresh;
    if (Inst.Use2 == V)
      Inst.Use2 = Fresh;
    if (Inst.Def == V)
      Inst.Def = Fresh;
  }

  std::vector<PendingInsert> Inserts;
  if (LiveIn)
    Inserts.push_back({BlockId, 0, Instruction::makeMov(Fresh, V)});
  if (LiveOut)
    Inserts.push_back({BlockId, getTerminatorGroupBegin(BB),
                       Instruction::makeMov(V, Fresh)});
  applyInserts(P, Inserts);
  return Fresh;
}
