//===- BoundsEstimator.cpp ------------------------------------------------===//

#include "alloc/BoundsEstimator.h"

#include <algorithm>
#include <cassert>

using namespace npral;

RegBounds npral::estimateRegBounds(const ThreadAnalysis &TA) {
  RegBounds Bounds;
  Bounds.MinR = TA.getRegPmax();
  Bounds.MinPR = TA.getRegPCSBmax();

  const InterferenceGraph &GIG = TA.GIG;
  const int N = GIG.getNumNodes();
  Coloring Colors(static_cast<size_t>(N), NoColor);

  // Step 1: color the BIG minimally. Only boundary interference constrains
  // this stage, per Fig. 7.
  Coloring BIGColors(static_cast<size_t>(N), NoColor);
  int PR = colorMinimally(TA.BIG, TA.BoundaryNodes, BIGColors);
  TA.BoundaryNodes.forEach([&](int Node) {
    Colors[static_cast<size_t>(Node)] = BIGColors[static_cast<size_t>(Node)];
  });

  // Step 2: color each IIG minimally and independently (Claim 2: they share
  // no edges, so a shared scratch coloring vector is safe). The scratch is
  // reused across IIGs without re-clearing: colorMinimally only writes
  // member slots, stale entries all belong to other NSRs' internal nodes,
  // and two internal nodes of different NSRs are never GIG-adjacent (they
  // would be co-live at a point, making that point's NSR the home of both),
  // so stale colors are never read either.
  int R = PR;
  Coloring IIGColors(static_cast<size_t>(N), NoColor);
  for (const BitVector &Members : TA.IIGMembers) {
    if (Members.none())
      continue;
    int Used = colorMinimally(GIG, Members, IIGColors);
    R = std::max(R, Used);
    Members.forEach([&](int Node) {
      Colors[static_cast<size_t>(Node)] = IIGColors[static_cast<size_t>(Node)];
    });
  }

  // Step 3: merge. Conflict edges are GIG edges whose endpoints got the
  // same color: internal-vs-boundary edges (absent from both the BIG and
  // the IIGs) and boundary-vs-boundary edges internal to an NSR (absent
  // from the BIG). Resolve per Fig. 7(b): recolor one endpoint within its
  // band; failing that, move one of its neighbors; failing that, grow the
  // relevant bound and recolor.
  std::vector<int> BandLo(static_cast<size_t>(N), 0);
  std::vector<int> BandHi(static_cast<size_t>(N), 0);
  auto refreshBands = [&]() {
    for (int Node = 0; Node < N; ++Node)
      BandHi[static_cast<size_t>(Node)] =
          TA.BoundaryNodes.test(Node) ? PR : R;
  };
  refreshBands();

  auto findConflictEdge = [&](int &OutA, int &OutB) -> bool {
    for (int A = 0; A < N; ++A) {
      int CA = Colors[static_cast<size_t>(A)];
      if (CA == NoColor)
        continue;
      // Neighbors are ascending, so the first match is the lowest B > A —
      // and the early break skips the tail of the adjacency slice.
      for (int B : GIG.neighbors(A)) {
        if (B > A && Colors[static_cast<size_t>(B)] == CA) {
          OutA = A;
          OutB = B;
          return true;
        }
      }
    }
    return false;
  };

  int ConflictA, ConflictB;
  while (findConflictEdge(ConflictA, ConflictB)) {
    auto tryRecolor = [&](int Node) -> bool {
      int Lo = BandLo[static_cast<size_t>(Node)];
      int Hi = BandHi[static_cast<size_t>(Node)];
      int Old = Colors[static_cast<size_t>(Node)];
      Colors[static_cast<size_t>(Node)] = NoColor;
      int C = pickFreeColor(GIG, Colors, Node, Lo, Hi);
      if (C != NoColor) {
        Colors[static_cast<size_t>(Node)] = C;
        return true;
      }
      Colors[static_cast<size_t>(Node)] = Old;
      return false;
    };

    // Prefer recoloring the internal endpoint (its band is wider).
    int First = TA.BoundaryNodes.test(ConflictB) ? ConflictA : ConflictB;
    int Second = First == ConflictA ? ConflictB : ConflictA;
    if (tryRecolor(First) || tryRecolor(Second))
      continue;
    if (recolorViaNeighbor(GIG, Colors, First, BandLo[static_cast<size_t>(First)],
                           BandHi[static_cast<size_t>(First)], BandLo, BandHi))
      continue;
    if (recolorViaNeighbor(GIG, Colors, Second,
                           BandLo[static_cast<size_t>(Second)],
                           BandHi[static_cast<size_t>(Second)], BandLo,
                           BandHi))
      continue;

    // Grow a bound. If either endpoint is internal, growing R suffices;
    // otherwise both are boundary and PR must grow (R grows with it when
    // they were equal).
    bool FirstBoundary = TA.BoundaryNodes.test(First);
    if (!FirstBoundary) {
      ++R;
      Colors[static_cast<size_t>(First)] = R - 1;
    } else {
      assert(TA.BoundaryNodes.test(Second) && "expected boundary conflict");
      ++PR;
      R = std::max(R, PR);
      Colors[static_cast<size_t>(First)] = PR - 1;
    }
    refreshBands();
  }

  Bounds.MaxPR = PR;
  Bounds.MaxR = std::max(R, PR);
  Bounds.Colors = std::move(Colors);

  // The move-free upper bounds can never undercut the with-moves lower
  // bounds.
  assert(Bounds.MaxPR >= Bounds.MinPR && "MaxPR below MinPR");
  assert(Bounds.MaxR >= Bounds.MinR && "MaxR below MinR");
  return Bounds;
}
