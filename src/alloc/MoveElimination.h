//===- MoveElimination.h - Redundant move cleanup ---------------*- C++ -*-===//
///
/// \file
/// The paper's Eliminate_unnecessary_move step (Fig. 10): after live range
/// splitting has inserted reconciling moves, some are redundant — the value
/// already sits where the move puts it, or nothing ever reads the copy.
/// This pass removes, iterating to a fixpoint:
///
///  * `mov x, x`;
///  * dead moves (the destination is not live afterwards);
///  * copies that re-establish an already-valid equality (local copy
///    propagation within a block, with facts killed at context switch
///    boundaries — while the thread is switched out another thread may
///    legally overwrite any register the fact's operands map to if they
///    are shared, so facts do not survive a CSB).
///
/// Only `mov` instructions are touched; the pass is safe on both virtual
/// and physical/color programs.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_MOVEELIMINATION_H
#define NPRAL_ALLOC_MOVEELIMINATION_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace npral {

/// Remove redundant moves from \p P; returns how many were deleted.
int eliminateRedundantMoves(Program &P);

/// As above, additionally accumulating the frequency-weighted cost of the
/// removed moves into \p WeightedRemoved: a removal in block B adds
/// BlockWeights[B] (or 1 when B is beyond the vector — e.g. a block the
/// caller created without registering a weight).
int eliminateRedundantMoves(Program &P,
                            const std::vector<int64_t> &BlockWeights,
                            int64_t &WeightedRemoved);

} // namespace npral

#endif // NPRAL_ALLOC_MOVEELIMINATION_H
