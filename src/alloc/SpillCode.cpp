//===- SpillCode.cpp ------------------------------------------------------===//

#include "alloc/SpillCode.h"

namespace npral {

SpillRewrite insertSpillCode(Program &P, const std::vector<Reg> &Victims,
                             const std::vector<int64_t> &SlotOf) {
  SpillRewrite Out;
  std::vector<char> IsSpilled(static_cast<size_t>(P.NumRegs), 0);
  for (Reg V : Victims)
    IsSpilled[static_cast<size_t>(V)] = 1;
  // Registers created below (reload/store temps) are never spilled; they
  // have IDs beyond the original NumRegs.
  auto isSpilledReg = [&](Reg V) {
    return V != NoReg && static_cast<size_t>(V) < IsSpilled.size() &&
           IsSpilled[static_cast<size_t>(V)];
  };

  for (int B = 0; B < P.getNumBlocks(); ++B) {
    BasicBlock &BB = P.block(B);
    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      // NOTE: insertions invalidate instruction references; re-take after
      // each one.
      {
        Instruction &Cur = BB.Instrs[I];
        // Reload the first use. If the same register also sits in the other
        // use slot, one reload covers both.
        if (isSpilledReg(Cur.Use1)) {
          Reg V = Cur.Use1;
          Reg T = P.addReg(P.getRegName(V) + ".rl");
          Out.Temps.push_back(T);
          BB.Instrs.insert(
              BB.Instrs.begin() + static_cast<long>(I),
              Instruction::makeLoadAbs(T, SlotOf[static_cast<size_t>(V)]));
          ++I;
          ++Out.Loads;
          Instruction &Again = BB.Instrs[I];
          if (Again.Use2 == V)
            Again.Use2 = T; // same register used twice: one reload suffices
          Again.Use1 = T;
        }
      }
      {
        Instruction &Cur = BB.Instrs[I];
        if (isSpilledReg(Cur.Use2)) {
          Reg V = Cur.Use2;
          Reg T = P.addReg(P.getRegName(V) + ".rl");
          Out.Temps.push_back(T);
          BB.Instrs.insert(
              BB.Instrs.begin() + static_cast<long>(I),
              Instruction::makeLoadAbs(T, SlotOf[static_cast<size_t>(V)]));
          ++I;
          ++Out.Loads;
          BB.Instrs[I].Use2 = T;
        }
      }
      // Store after a definition.
      {
        Instruction &Cur = BB.Instrs[I];
        if (isSpilledReg(Cur.Def)) {
          Reg V = Cur.Def;
          Reg T = P.addReg(P.getRegName(V) + ".st");
          Out.Temps.push_back(T);
          Cur.Def = T;
          BB.Instrs.insert(
              BB.Instrs.begin() + static_cast<long>(I) + 1,
              Instruction::makeStoreAbs(SlotOf[static_cast<size_t>(V)], T));
          ++I;
          ++Out.Stores;
        }
      }
    }
  }

  // Entry-live spilled registers: store their initial value exactly once
  // from a dedicated pre-entry block.
  std::vector<Instruction> EntryStores;
  for (Reg V : P.EntryLiveRegs)
    if (isSpilledReg(V)) {
      EntryStores.push_back(
          Instruction::makeStoreAbs(SlotOf[static_cast<size_t>(V)], V));
      ++Out.Stores;
    }
  if (!EntryStores.empty()) {
    // Keep the label unique across spill rounds so the printed assembly
    // stays unambiguous if re-parsed.
    std::string Label = "spill.entry";
    auto taken = [&] {
      for (const BasicBlock &BB : P.Blocks)
        if (P.blockName(BB.Id) == Label)
          return true;
      return false;
    };
    for (int Suffix = 2; taken(); ++Suffix)
      Label = "spill.entry" + std::to_string(Suffix);
    int Pre = P.addBlock(Label);
    BasicBlock &PreBB = P.block(Pre);
    PreBB.Instrs = std::move(EntryStores);
    PreBB.Instrs.push_back(Instruction::makeBr(P.getEntryBlock()));
    P.EntryBlock = Pre;
  }
  return Out;
}

} // namespace npral
