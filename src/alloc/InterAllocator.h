//===- InterAllocator.h - Inter-thread register allocation ------*- C++ -*-===//
///
/// \file
/// The inter-thread register allocator of paper §6 (Fig. 8) plus the SRA
/// specialisation of §8 and the final physical materialisation.
///
/// Starting from the per-thread upper bounds (MaxPR, MaxR), the allocator
/// greedily reduces the total requirement Σ PRᵢ + max SRᵢ until it fits in
/// Nreg, at each step choosing the cheapest reduction as priced by the
/// intra-thread allocators (move-insertion cost):
///
///   * reduce one thread's PR by 1 (direct -1 on the total), or
///   * reduce *all* threads whose SR equals the maximum by 1.
///
/// Physical layout after convergence: thread i's private colors map to the
/// exclusive range [Σ_{j<i} PRⱼ, Σ_{j≤i} PRⱼ); shared colors of every
/// thread map into one global window of SGR = max SRᵢ registers starting at
/// Σ PRⱼ. Registers above Σ PRⱼ + SGR stay unused.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_INTERALLOCATOR_H
#define NPRAL_ALLOC_INTERALLOCATOR_H

#include "alloc/IntraAllocator.h"
#include "ir/Program.h"
#include "support/Status.h"
#include "trace/DecisionLog.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace npral {

/// Per-thread outcome of inter-thread allocation.
struct ThreadAllocation {
  int PR = 0;
  int SR = 0;
  int MoveCost = 0;
  /// Frequency-weighted move cost; equals MoveCost when the thread was
  /// allocated under the unit cost model.
  int64_t WeightedCost = 0;
  std::string Strategy;
  /// First physical register of this thread's private range.
  int PrivateBase = 0;
  RegBounds Bounds;
};

/// External limits on one allocateInterThread call. All fields optional;
/// the default imposes nothing.
struct InterAllocLimits {
  /// When non-null and set, the allocator abandons the run at the next loop
  /// iteration and fails with StatusCode::DeadlineExceeded. The watchdog
  /// of the batch pipeline flips this flag from another thread.
  const std::atomic<bool> *Cancel = nullptr;
};

/// Outcome of the inter-thread allocator.
struct InterThreadResult {
  bool Success = false;
  std::string FailReason;
  /// Classification of the failure (Ok on success): Infeasible when no
  /// configuration fits Nreg — the caller may degrade by spilling —
  /// DeadlineExceeded when cancelled, InvalidIR for malformed input.
  StatusCode FailCode = StatusCode::Ok;
  std::vector<ThreadAllocation> Threads;
  /// Number of globally shared registers (max SRᵢ).
  int SGR = 0;
  /// First shared physical register (= Σ PRᵢ).
  int SharedBase = 0;
  /// Total physical registers consumed: Σ PRᵢ + SGR.
  int RegistersUsed = 0;
  /// Total move instructions inserted over all threads.
  int TotalMoveCost = 0;
  /// Total frequency-weighted move cost (== TotalMoveCost without a
  /// profile).
  int64_t TotalWeightedCost = 0;
  /// The rewritten threads over physical registers (NumRegs = Nreg each).
  MultiThreadProgram Physical;
};

/// Run the inter-thread allocator for the threads of \p MTP sharing \p Nreg
/// physical registers.
InterThreadResult allocateInterThread(const MultiThreadProgram &MTP, int Nreg);

/// Same, reusing precomputed per-thread analyses. \p Analyses is aligned
/// with MTP.Threads; null (or missing) entries are computed fresh. When an
/// entry is non-null the corresponding thread must already be live-range
/// renamed and the bundle must match its content — the batch driver's
/// content-hash cache guarantees both. The bundles are only read, so the
/// same shared_ptr may be passed to any number of concurrent calls.
InterThreadResult allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses);

/// Profile-guided variant: \p Models is aligned with MTP.Threads (missing
/// entries mean the unit model) and prices every candidate reduction by
/// frequency-weighted move cost, so the Fig. 8 greedy loop sheds registers
/// where the reconciling moves execute rarely. With all-unit models the
/// result is identical to the unweighted overloads.
InterThreadResult allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models);

/// Fully instrumented variant: when \p Log is non-null it receives one
/// ReductionStep per Fig. 8 iteration (with the move-cost bids of every
/// candidate the loop priced), one RebalanceStep per applied PGO exchange,
/// and the intra-thread recolor/split events of every thread — the data
/// behind `npralc alloc --explain`. The allocation itself is unchanged.
InterThreadResult allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models, AllocationDecisionLog *Log);

/// Cancellable variant: checks \p Limits.Cancel at every Fig. 8 iteration
/// and every rebalance step, failing with StatusCode::DeadlineExceeded when
/// it fires. Identical to the 5-argument overload under default limits.
InterThreadResult allocateInterThread(
    const MultiThreadProgram &MTP, int Nreg,
    const std::vector<std::shared_ptr<const ThreadAnalysisBundle>> &Analyses,
    const std::vector<CostModel> &Models, AllocationDecisionLog *Log,
    const InterAllocLimits &Limits);

/// Symmetric Register Allocation: all Nthd threads run \p P. Exhaustively
/// sweeps (PR, SR) with Nthd*PR + SR <= Nreg, minimising total register use
/// (then PR). With \p RequireZeroCost only move-free allocations qualify —
/// this matches the paper's Fig. 14 methodology ("the algorithm continues
/// until the cost returned is non-zero").
struct SRAResult {
  bool Success = false;
  std::string FailReason;
  int PR = 0;
  int SR = 0;
  int MoveCost = 0;
  int TotalRegisters = 0; ///< Nthd*PR + SR
};
SRAResult solveSRA(const Program &P, int Nthd, int Nreg,
                   bool RequireZeroCost);

/// Build the physical MultiThreadProgram from converged per-thread color
/// programs. Exposed for tests; allocateInterThread calls it internally.
MultiThreadProgram materializePhysical(
    const std::vector<const Program *> &ColorPrograms,
    const std::vector<int> &PRs, int SGR, int Nreg,
    const std::string &Name);

} // namespace npral

#endif // NPRAL_ALLOC_INTERALLOCATOR_H
