//===- ColoringUtils.cpp --------------------------------------------------===//

#include "alloc/ColoringUtils.h"

#include <algorithm>
#include <cassert>

using namespace npral;

int npral::colorMinimally(const InterferenceGraph &IG, const BitVector &Members,
                          Coloring &Colors) {
  if (Colors.size() != static_cast<size_t>(IG.getNumNodes()))
    Colors.assign(static_cast<size_t>(IG.getNumNodes()), NoColor);

  int MaxUsed = -1;
  std::vector<char> Used; // reused across nodes; grown, never shrunk
  for (int Node : IG.smallestLastOrder(Members)) {
    // Gather neighbor colors.
    std::fill(Used.begin(), Used.end(), 0);
    IG.neighbors(Node).forEach([&](int Nb) {
      int C = Colors[static_cast<size_t>(Nb)];
      if (C < 0)
        return;
      if (C >= static_cast<int>(Used.size()))
        Used.resize(static_cast<size_t>(C) + 1, 0);
      Used[static_cast<size_t>(C)] = 1;
    });
    int C = 0;
    while (C < static_cast<int>(Used.size()) && Used[static_cast<size_t>(C)])
      ++C;
    Colors[static_cast<size_t>(Node)] = C;
    MaxUsed = std::max(MaxUsed, C);
  }
  return MaxUsed + 1;
}

int npral::neighborColorCount(const InterferenceGraph &IG,
                              const Coloring &Colors, int Node) {
  std::vector<char> Seen;
  int Count = 0;
  IG.neighbors(Node).forEach([&](int Nb) {
    int C = Colors[static_cast<size_t>(Nb)];
    if (C < 0)
      return;
    if (C >= static_cast<int>(Seen.size()))
      Seen.resize(static_cast<size_t>(C) + 1, 0);
    if (!Seen[static_cast<size_t>(C)]) {
      Seen[static_cast<size_t>(C)] = 1;
      ++Count;
    }
  });
  return Count;
}

int npral::pickFreeColor(const InterferenceGraph &IG, const Coloring &Colors,
                         int Node, int Lo, int Hi, int PreferFrom) {
  if (Lo >= Hi)
    return NoColor;
  // Neighbor-color bitset on the stack for realistic register counts; this
  // runs once per select step of every coloring, so a heap BitVector here
  // is measurable batch-pipeline overhead.
  uint64_t Small[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<uint64_t> Big;
  uint64_t *Used = Small;
  if (Hi > 512) {
    Big.assign(static_cast<size_t>((Hi + 63) / 64), 0);
    Used = Big.data();
  }
  for (int Nb : IG.neighbors(Node)) {
    int C = Colors[static_cast<size_t>(Nb)];
    if (C >= 0 && C < Hi)
      Used[static_cast<size_t>(C) / 64] |= uint64_t(1) << (C % 64);
  }
  auto scan = [&](int Begin, int End) -> int {
    for (int C = Begin; C < End; ++C)
      if (!((Used[static_cast<size_t>(C) / 64] >> (C % 64)) & 1))
        return C;
    return NoColor;
  };
  if (PreferFrom >= Lo && PreferFrom < Hi) {
    int C = scan(PreferFrom, Hi);
    if (C != NoColor)
      return C;
    return scan(Lo, PreferFrom);
  }
  return scan(Lo, Hi);
}

bool npral::recolorViaNeighbor(const InterferenceGraph &IG, Coloring &Colors,
                               int Node, int Lo, int Hi,
                               const std::vector<int> &BandLo,
                               const std::vector<int> &BandHi) {
  // For each candidate color c for Node, the blockers are the neighbors
  // currently holding c. If exactly one blocker exists and it can move to
  // some other color within its own band, move it.
  for (int C = Lo; C < Hi; ++C) {
    int Blocker = -1;
    int NumBlockers = 0;
    IG.neighbors(Node).forEach([&](int Nb) {
      if (Colors[static_cast<size_t>(Nb)] == C) {
        Blocker = Nb;
        ++NumBlockers;
      }
    });
    if (NumBlockers != 1)
      continue;
    int NbLo = BandLo[static_cast<size_t>(Blocker)];
    int NbHi = BandHi[static_cast<size_t>(Blocker)];
    int OldColor = Colors[static_cast<size_t>(Blocker)];
    Colors[static_cast<size_t>(Blocker)] = NoColor;
    int NewColor = pickFreeColor(IG, Colors, Blocker, NbLo, NbHi);
    if (NewColor == NoColor || NewColor == C) {
      Colors[static_cast<size_t>(Blocker)] = OldColor;
      continue;
    }
    Colors[static_cast<size_t>(Blocker)] = NewColor;
    Colors[static_cast<size_t>(Node)] = C;
    return true;
  }
  return false;
}

ConstrainedColoringResult npral::colorConstrained(const ThreadAnalysis &TA,
                                                  int PR, int R) {
  ConstrainedColoringResult Result;
  const InterferenceGraph &IG = TA.GIG;
  const int N = IG.getNumNodes();
  Result.Colors.assign(static_cast<size_t>(N), NoColor);

  std::vector<int> BandLo(static_cast<size_t>(N), 0);
  std::vector<int> BandHi(static_cast<size_t>(N), R);
  TA.BoundaryNodes.forEach(
      [&](int Node) { BandHi[static_cast<size_t>(Node)] = PR; });

  // Boundary nodes first (scarcer constraint), then internal nodes.
  std::vector<int> Order = IG.smallestLastOrder(TA.BoundaryNodes);
  std::vector<int> InternalOrder = IG.smallestLastOrder(TA.InternalNodes);
  Order.insert(Order.end(), InternalOrder.begin(), InternalOrder.end());

  for (int Node : Order) {
    bool IsBoundary = TA.BoundaryNodes.test(Node);
    int Lo = 0;
    int Hi = IsBoundary ? PR : R;
    // Internal nodes prefer the shared band so private colors stay free for
    // boundary values; boundary nodes fill from zero.
    int Prefer = IsBoundary ? -1 : PR;
    int C = pickFreeColor(IG, Result.Colors, Node, Lo, Hi, Prefer);
    if (C == NoColor &&
        !recolorViaNeighbor(IG, Result.Colors, Node, Lo, Hi, BandLo, BandHi)) {
      Result.Success = false;
      Result.FailedNode = Node;
      return Result;
    }
    if (C != NoColor)
      Result.Colors[static_cast<size_t>(Node)] = C;
    assert(Result.Colors[static_cast<size_t>(Node)] != NoColor &&
           "node left uncolored");
  }
  Result.Success = true;
  return Result;
}
