//===- IntraAllocator.cpp -------------------------------------------------===//

#include "alloc/IntraAllocator.h"

#include "alloc/MoveElimination.h"
#include "alloc/SplitTransforms.h"
#include "analysis/LiveRangeRenaming.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cassert>

using namespace npral;

namespace {

int countBlockMoves(const BasicBlock &BB) {
  int N = 0;
  for (const Instruction &I : BB.Instrs)
    if (I.Op == Opcode::Mov)
      ++N;
  return N;
}

} // namespace

Program npral::rewriteToColors(const Program &P, const Coloring &Colors,
                               int NumColors) {
  Program Out;
  Out.Name = P.Name;
  Out.NumRegs = NumColors;
  Out.IsPhysical = false;
  Out.EntryBlock = P.EntryBlock;
  auto colorOf = [&](Reg R) -> Reg {
    int C = Colors[static_cast<size_t>(R)];
    assert(C >= 0 && C < NumColors && "referenced register left uncolored");
    return C;
  };
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    int NewB = Out.addBlock(P.blockName(BB.Id));
    Out.block(NewB).FallThrough = BB.FallThrough;
    for (const Instruction &I : BB.Instrs) {
      Instruction NewI = I;
      if (I.Def != NoReg)
        NewI.Def = colorOf(I.Def);
      if (I.Use1 != NoReg)
        NewI.Use1 = colorOf(I.Use1);
      if (I.Use2 != NoReg)
        NewI.Use2 = colorOf(I.Use2);
      Out.block(NewB).Instrs.push_back(NewI);
    }
  }
  for (Reg V : P.EntryLiveRegs) {
    int C = Colors[static_cast<size_t>(V)];
    // Entry-live but unreferenced registers still need a slot for the
    // harness to write into; reuse color 0 (the value is never read).
    Out.EntryLiveRegs.push_back(C < 0 ? 0 : C);
  }
  return Out;
}

ThreadAnalysisBundle npral::computeThreadAnalysisBundle(
    const Program &RenamedP) {
  ThreadAnalysisBundle Bundle;
  Bundle.TA = analyzeThread(RenamedP);
  Bundle.Bounds = estimateRegBounds(Bundle.TA);
  return Bundle;
}

IntraThreadAllocator::IntraThreadAllocator(const Program &P, CostModel CM)
    : Original(renameLiveRanges(P)), TA(analyzeThread(Original)),
      Bounds(estimateRegBounds(TA)), CM(std::move(CM)) {}

IntraThreadAllocator::IntraThreadAllocator(const Program &RenamedP,
                                           const ThreadAnalysisBundle &Pre,
                                           CostModel CM)
    : Original(RenamedP), TA(Pre.TA), Bounds(Pre.Bounds), CM(std::move(CM)) {}

const IntraResult &IntraThreadAllocator::allocate(int PR, int SR) {
  auto Key = std::make_pair(PR, SR);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  const IntraResult &R =
      Cache.emplace(Key, computeAllocation(PR, SR)).first->second;
  if (Log) {
    IntraEvent E;
    E.K = IntraEvent::Recolor;
    E.Thread = LogThread;
    E.PR = PR;
    E.SR = SR;
    if (R.Feasible)
      E.Detail = "strategy=" + R.Strategy +
                 " moves=" + std::to_string(R.MoveCost) +
                 " weighted=" + std::to_string(R.WeightedCost);
    else
      E.Detail = "infeasible (" + R.FailReason + ")";
    Log->IntraEvents.push_back(std::move(E));
    if (R.Feasible && R.Strategy == "fragment") {
      IntraEvent F;
      F.K = IntraEvent::FragmentFallback;
      F.Thread = LogThread;
      F.PR = PR;
      F.SR = SR;
      F.Detail = "moves=" + std::to_string(R.MoveCost);
      Log->IntraEvents.push_back(std::move(F));
    }
  }
  return R;
}

IntraResult IntraThreadAllocator::computeAllocation(int PR, int SR) {
  IntraResult Result;
  Result.PR = PR;
  Result.SR = SR;
  const int R = PR + SR;

  if (PR < 0 || SR < 0 || PR < Bounds.MinPR || R < Bounds.MinR) {
    Result.Feasible = false;
    Result.FailReason = "budget below the thread's lower bounds";
    return Result;
  }

  // Strategy 0: at or above the Fig.-7 upper bounds the estimator's own
  // merged coloring is already a valid move-free allocation (boundary
  // colors < MaxPR <= PR, all colors < MaxR <= R).
  if (PR >= Bounds.MaxPR && R >= Bounds.MaxR) {
    Result.Feasible = true;
    Result.MoveCost = 0;
    Result.ColorProgram = rewriteToColors(Original, Bounds.Colors, R);
    Result.Strategy = "bounds";
    return Result;
  }

  // Strategy 1: move-free constrained coloring.
  ConstrainedColoringResult Direct = colorConstrained(TA, PR, R);
  if (Direct.Success) {
    static_cast<ColorAllocation &>(Result) = ColorAllocation();
    Result.Feasible = true;
    Result.PR = PR;
    Result.SR = SR;
    Result.MoveCost = 0;
    Result.ColorProgram = rewriteToColors(Original, Direct.Colors, R);
    Result.Strategy = "direct";
    return Result;
  }

  // Strategy 2: greedy NSR exclusion / block splitting.
  ColorAllocation Greedy = allocateWithGreedySplitting(PR, SR);

  // Strategy 3: constructive fallback.
  ColorAllocation Fragment = allocateByFragments(Original, TA, PR, SR, CM);

  // Under the unit model the historical raw-count comparison is preserved
  // exactly; a frequency model compares the weighted costs instead.
  const ColorAllocation *Best = nullptr;
  const char *Strategy = "";
  bool GreedyWins =
      Greedy.Feasible &&
      (!Fragment.Feasible ||
       (CM.isUnit() ? Greedy.MoveCost <= Fragment.MoveCost
                    : Greedy.WeightedCost <= Fragment.WeightedCost));
  if (GreedyWins) {
    Best = &Greedy;
    Strategy = "split";
  } else if (Fragment.Feasible) {
    Best = &Fragment;
    Strategy = "fragment";
  }
  if (!Best) {
    Result.Feasible = false;
    Result.FailReason = Fragment.FailReason.empty() ? Greedy.FailReason
                                                    : Fragment.FailReason;
    return Result;
  }
  static_cast<ColorAllocation &>(Result) = *Best;
  Result.Strategy = Strategy;
  // The paper's Eliminate_unnecessary_move step: splitting strategies may
  // leave copies whose value is already in place or never read again. Every
  // removed move was one this allocation inserted (the input program is
  // live-range renamed, so its own moves connect distinct ranges and
  // survive), hence the cost cannot go negative.
  if (CM.isUnit()) {
    int Removed = eliminateRedundantMoves(Result.ColorProgram);
    Result.MoveCost -= Removed;
    assert(Result.MoveCost >= 0 &&
           "move elimination removed moves the allocator never inserted");
    Result.WeightedCost = Result.MoveCost;
  } else {
    // Weight removals by the block they sat in. For the fragment strategy
    // the output CFG may contain edge-split blocks beyond the input's —
    // OutputWeights covers them; for greedy splitting the block structure
    // is unchanged and the model's own weights align directly.
    std::vector<int64_t> BlockWeights = Result.OutputWeights;
    if (BlockWeights.empty()) {
      BlockWeights.resize(
          static_cast<size_t>(Result.ColorProgram.getNumBlocks()), 1);
      for (int B = 0; B < Result.ColorProgram.getNumBlocks(); ++B)
        BlockWeights[static_cast<size_t>(B)] = CM.blockWeight(B);
    }
    int64_t WeightedRemoved = 0;
    int Removed = eliminateRedundantMoves(Result.ColorProgram, BlockWeights,
                                          WeightedRemoved);
    Result.MoveCost -= Removed;
    Result.WeightedCost -= WeightedRemoved;
    assert(Result.MoveCost >= 0 &&
           "move elimination removed moves the allocator never inserted");
    assert(Result.WeightedCost >= 0 && "weighted cost went negative");
  }
  return Result;
}

ColorAllocation IntraThreadAllocator::allocateWithGreedySplitting(int PR,
                                                                  int SR) {
  ColorAllocation Result;
  Result.PR = PR;
  Result.SR = SR;
  const int R = PR + SR;

  Program Work = Original;
  // Progress cap: each split adds a register; allow a generous multiple.
  const int MaxSplits = 4 * Original.NumRegs + 16;

  for (int Iter = 0; Iter < MaxSplits; ++Iter) {
    ThreadAnalysis WorkTA = analyzeThread(Work);
    ConstrainedColoringResult CCR = colorConstrained(WorkTA, PR, R);
    if (CCR.Success) {
      Result.Feasible = true;
      Result.ColorProgram = rewriteToColors(Work, CCR.Colors, R);
      Result.MoveCost = Work.countMoves() - Original.countMoves();
      if (CM.isUnit()) {
        Result.WeightedCost = Result.MoveCost;
      } else {
        // The transforms never add blocks, so per-block mov deltas line up
        // with the model's weights.
        int64_t Weighted = 0;
        for (int B = 0; B < Original.getNumBlocks(); ++B)
          Weighted += CM.blockWeight(B) *
                      static_cast<int64_t>(countBlockMoves(Work.block(B)) -
                                           countBlockMoves(Original.block(B)));
        Result.WeightedCost = Weighted;
      }
      return Result;
    }

    int Node = CCR.FailedNode;
    assert(Node >= 0 && "failed coloring without a failing node");
    bool DidSplit = false;

    if (WorkTA.BoundaryNodes.test(Node)) {
      // NSR exclusion: carve the node out of the NSR where it is
      // referenced most (excluding the largest chunk relieves the most
      // internal conflicts per move pair).
      std::vector<int> RefCount(
          static_cast<size_t>(WorkTA.NSRs.getNumNSRs()), 0);
      for (int B = 0; B < Work.getNumBlocks(); ++B) {
        const BasicBlock &BB = Work.block(B);
        for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
          const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
          if (Inst.usesReg(Node))
            ++RefCount[static_cast<size_t>(WorkTA.NSRs.instrPreNSR(B, I))];
          if (Inst.Def == Node)
            ++RefCount[static_cast<size_t>(WorkTA.NSRs.instrPostNSR(B, I))];
        }
      }
      int BestNSR = -1;
      if (CM.isUnit()) {
        for (int K = 0; K < WorkTA.NSRs.getNumNSRs(); ++K)
          if (RefCount[static_cast<size_t>(K)] > 0 &&
              (BestNSR < 0 || RefCount[static_cast<size_t>(K)] >
                                  RefCount[static_cast<size_t>(BestNSR)]))
            BestNSR = K;
      } else {
        // Frequency-aware rule: among NSRs that reference the node, prefer
        // the cheapest weighted reconciliation (a hot loop's CSB moves
        // execute every iteration); break ties toward more references.
        int64_t BestWeighted = 0;
        for (int K = 0; K < WorkTA.NSRs.getNumNSRs(); ++K) {
          if (RefCount[static_cast<size_t>(K)] <= 0)
            continue;
          int64_t W =
              estimateExcludeNSRMovesWeighted(Work, WorkTA, Node, K, CM);
          if (W < 0)
            continue;
          if (BestNSR < 0 || W < BestWeighted ||
              (W == BestWeighted &&
               RefCount[static_cast<size_t>(K)] >
                   RefCount[static_cast<size_t>(BestNSR)])) {
            BestNSR = K;
            BestWeighted = W;
          }
        }
      }
      if (BestNSR >= 0) {
        DidSplit = excludeNSR(Work, WorkTA, Node, BestNSR) != NoReg;
        if (DidSplit && Log) {
          IntraEvent E;
          E.K = IntraEvent::ExcludeNSR;
          E.Thread = LogThread;
          E.PR = PR;
          E.SR = SR;
          E.Detail = "boundary node " + std::to_string(Node) + " from nsr" +
                     std::to_string(BestNSR);
          Log->IntraEvents.push_back(std::move(E));
        }
      }
    } else {
      // Internal node: split it in the block where it is referenced most.
      // Under a frequency model, prefer the block where the (at most two)
      // reconciling moves are cheapest; ties go to more references.
      int BestBlock = -1;
      int BestRefs = 0;
      int64_t BestWeighted = 0;
      for (int B = 0; B < Work.getNumBlocks(); ++B) {
        int Refs = 0;
        for (const Instruction &Inst : Work.block(B).Instrs)
          if (Inst.Def == Node || Inst.usesReg(Node))
            ++Refs;
        if (Refs == 0)
          continue;
        if (CM.isUnit()) {
          if (Refs > BestRefs) {
            BestRefs = Refs;
            BestBlock = B;
          }
          continue;
        }
        int Movs = (WorkTA.Liveness.blockLiveIn(B).test(Node) ? 1 : 0) +
                   (WorkTA.Liveness.blockLiveOut(B).test(Node) ? 1 : 0);
        int64_t W = CM.blockWeight(B) * static_cast<int64_t>(Movs);
        if (BestBlock < 0 || W < BestWeighted ||
            (W == BestWeighted && Refs > BestRefs)) {
          BestBlock = B;
          BestRefs = Refs;
          BestWeighted = W;
        }
      }
      if (BestBlock >= 0) {
        DidSplit = splitInBlock(Work, WorkTA, Node, BestBlock) != NoReg;
        if (DidSplit && Log) {
          IntraEvent E;
          E.K = IntraEvent::BlockSplit;
          E.Thread = LogThread;
          E.PR = PR;
          E.SR = SR;
          E.Detail = "internal node " + std::to_string(Node) + " in block " +
                     std::to_string(BestBlock);
          Log->IntraEvents.push_back(std::move(E));
        }
      }
    }

    if (!DidSplit) {
      Result.Feasible = false;
      Result.FailReason = "greedy splitting made no progress";
      return Result;
    }
  }

  Result.Feasible = false;
  Result.FailReason = "greedy splitting exceeded its iteration budget";
  return Result;
}
