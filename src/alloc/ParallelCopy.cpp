//===- ParallelCopy.cpp ---------------------------------------------------===//

#include "alloc/ParallelCopy.h"

#include <algorithm>
#include <cassert>

using namespace npral;

void npral::appendXorSwap(std::vector<Instruction> &Out, int A, int B) {
  Out.push_back(Instruction::makeBinary(Opcode::Xor, A, A, B));
  Out.push_back(Instruction::makeBinary(Opcode::Xor, B, A, B));
  Out.push_back(Instruction::makeBinary(Opcode::Xor, A, A, B));
}

int npral::appendParallelCopy(std::vector<Instruction> &Out,
                              std::vector<Copy> Pending, int Scratch) {
  int Appended = 0;
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [](const Copy &C) { return C.From == C.To; }),
                Pending.end());
  auto isSource = [&](int Color) {
    for (const Copy &C : Pending)
      if (C.From == Color)
        return true;
    return false;
  };
  auto drainAcyclic = [&]() {
    for (;;) {
      bool Progress = false;
      for (size_t I = 0; I < Pending.size(); ++I) {
        if (isSource(Pending[I].To))
          continue;
        Out.push_back(Instruction::makeMov(Pending[I].To, Pending[I].From));
        ++Appended;
        Pending.erase(Pending.begin() + static_cast<long>(I));
        Progress = true;
        break;
      }
      if (!Progress)
        return;
    }
  };

  drainAcyclic();
  // Only disjoint cycles remain.
  while (!Pending.empty()) {
    if (Scratch >= 0) {
      // Break one cycle with the scratch color, then drain.
      Copy First = Pending.front();
      Out.push_back(Instruction::makeMov(Scratch, First.From));
      ++Appended;
      for (Copy &C : Pending)
        if (C.From == First.From)
          C.From = Scratch;
      drainAcyclic();
      continue;
    }
    // No scratch: rotate the cycle with xor swaps. Collect the cycle
    // starting from the first pending copy: addresses a1 -> a2 -> ... -> ak.
    std::vector<int> Cycle;
    int Start = Pending.front().From;
    int Cur = Start;
    for (;;) {
      Cycle.push_back(Cur);
      int Next = -1;
      for (const Copy &C : Pending)
        if (C.From == Cur) {
          Next = C.To;
          break;
        }
      assert(Next >= 0 && "broken permutation cycle");
      if (Next == Start)
        break;
      Cur = Next;
    }
    // Rotate: the value at a1 must reach a2, a2's value a3, and so on:
    // swap(a1,a2), swap(a1,a3), ..., swap(a1,ak).
    for (size_t I = 1; I < Cycle.size(); ++I) {
      appendXorSwap(Out, Cycle[0], Cycle[static_cast<size_t>(I)]);
      Appended += 3;
    }
    Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                 [&](const Copy &C) {
                                   return std::find(Cycle.begin(), Cycle.end(),
                                                    C.From) != Cycle.end();
                                 }),
                  Pending.end());
  }
  return Appended;
}
