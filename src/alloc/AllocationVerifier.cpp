//===- AllocationVerifier.cpp ---------------------------------------------===//

#include "alloc/AllocationVerifier.h"

#include "analysis/InterferenceGraph.h"
#include "ir/IRVerifier.h"

#include <algorithm>

using namespace npral;

Status npral::verifyAllocationSafety(const MultiThreadProgram &Physical,
                                     AllocationSafetyStats *Stats) {
  const int Nthd = Physical.getNumThreads();
  if (Nthd == 0)
    return Status::error("no threads to verify");

  int NumRegs = Physical.Threads.front().NumRegs;
  for (const Program &T : Physical.Threads) {
    if (!T.IsPhysical)
      return Status::error("thread '" + T.Name + "' is not physical");
    if (T.NumRegs != NumRegs)
      return Status::error("threads disagree on register file size");
  }

  // Per-thread structural validity and use-before-def.
  for (const Program &T : Physical.Threads) {
    if (Status S = verifyProgram(T); !S.ok())
      return S;
    LivenessInfo LI = computeLiveness(T);
    if (Status S = checkNoUseOfUndef(T, LI); !S.ok())
      return S;
  }

  // Which registers does each thread reference, and which does it hold live
  // across its own CSBs?
  std::vector<BitVector> Referenced(static_cast<size_t>(Nthd),
                                    BitVector(NumRegs));
  std::vector<BitVector> LiveAcrossCSB(static_cast<size_t>(Nthd),
                                       BitVector(NumRegs));
  for (int T = 0; T < Nthd; ++T) {
    const Program &P = Physical.Threads[static_cast<size_t>(T)];
    for (const BasicBlock &BB : P.Blocks)
      for (const Instruction &I : BB.Instrs) {
        if (I.Def != NoReg)
          Referenced[static_cast<size_t>(T)].set(I.Def);
        if (I.Use1 != NoReg)
          Referenced[static_cast<size_t>(T)].set(I.Use1);
        if (I.Use2 != NoReg)
          Referenced[static_cast<size_t>(T)].set(I.Use2);
      }
    for (Reg R : P.EntryLiveRegs)
      Referenced[static_cast<size_t>(T)].set(R);

    LivenessInfo LI = computeLiveness(P);
    NSRInfo NSRs = computeNSRs(P, LI);
    for (const CSB &Boundary : NSRs.getCSBs())
      LiveAcrossCSB[static_cast<size_t>(T)].unionWith(Boundary.LiveAcross);
  }

  // Safety: a register live across thread T's context switches must not be
  // referenced by any other thread.
  for (int T = 0; T < Nthd; ++T) {
    for (int Other = 0; Other < Nthd; ++Other) {
      if (Other == T)
        continue;
      BitVector Clash = LiveAcrossCSB[static_cast<size_t>(T)];
      Clash.intersectWith(Referenced[static_cast<size_t>(Other)]);
      if (Clash.any()) {
        int Bad = Clash.toVector().front();
        return Status::error(
            "register p" + std::to_string(Bad) + " is live across a CSB of "
            "thread '" +
            Physical.Threads[static_cast<size_t>(T)].Name +
            "' but referenced by thread '" +
            Physical.Threads[static_cast<size_t>(Other)].Name + "'");
      }
    }
  }

  if (Stats) {
    Stats->PrivateRegCount.clear();
    BitVector Union(NumRegs);
    for (int T = 0; T < Nthd; ++T) {
      Stats->PrivateRegCount.push_back(
          LiveAcrossCSB[static_cast<size_t>(T)].count());
      Union.unionWith(Referenced[static_cast<size_t>(T)]);
    }
    int SharedCount = 0;
    for (int R = 0; R < NumRegs; ++R) {
      int NumUsers = 0;
      for (int T = 0; T < Nthd; ++T)
        if (Referenced[static_cast<size_t>(T)].test(R))
          ++NumUsers;
      if (NumUsers > 1)
        ++SharedCount;
    }
    Stats->SharedRegCount = SharedCount;
    int Touched = 0;
    Union.forEach([&](int R) { Touched = std::max(Touched, R + 1); });
    Stats->RegistersTouched = Touched;
  }
  return Status::success();
}
