//===- AllocationVerifier.cpp ---------------------------------------------===//

#include "alloc/AllocationVerifier.h"

#include "analysis/InterferenceGraph.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"

#include <algorithm>
#include <map>

using namespace npral;

namespace {

constexpr const char *SafetyCheck = "alloc-safety";
constexpr const char *RaceCheck = "cross-thread-race";
constexpr const char *AbsOverlapCheck = "cross-thread-abs-overlap";

/// First position in \p P that references \p R, as (block, instr); returns
/// false when R is only entry-live (or not referenced at all).
bool findFirstReference(const Program &P, Reg R, int &Block, int &Instr) {
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      if (Inst.Def == R || Inst.usesReg(R)) {
        Block = B;
        Instr = I;
        return true;
      }
    }
  }
  return false;
}

} // namespace

void npral::collectAllocationSafety(const MultiThreadProgram &Physical,
                                    DiagnosticEngine &Engine,
                                    AllocationSafetyStats *Stats,
                                    bool StructuralDiags) {
  const int Nthd = Physical.getNumThreads();
  if (Nthd == 0) {
    Engine.report(Severity::Error, SafetyCheck, "no threads to verify");
    return;
  }

  int NumRegs = Physical.Threads.front().NumRegs;
  bool PreconditionsOk = true;
  for (const Program &T : Physical.Threads) {
    if (!T.IsPhysical) {
      Engine.report(Severity::Error, SafetyCheck,
                    "thread '" + T.Name + "' is not physical")
          .Thread = T.Name;
      PreconditionsOk = false;
    }
    if (T.NumRegs != NumRegs) {
      Engine.report(Severity::Error, SafetyCheck,
                    "threads disagree on register file size");
      PreconditionsOk = false;
    }
  }
  if (!PreconditionsOk)
    return;

  // Per-thread structural validity, use-before-def, referenced registers
  // and live-across-CSB sets, in one pass sharing a single liveness run per
  // thread. A thread that fails the structural checks drops out of the
  // cross-thread analysis; the remaining pairs are still checked so one
  // malformed thread does not hide another's race.
  std::vector<char> ThreadOk(static_cast<size_t>(Nthd), 1);
  std::vector<BitVector> Referenced(static_cast<size_t>(Nthd),
                                    BitVector(NumRegs));
  std::vector<BitVector> LiveAcrossCSB(static_cast<size_t>(Nthd),
                                       BitVector(NumRegs));
  std::vector<NSRInfo> ThreadNSRs(static_cast<size_t>(Nthd));
  for (int T = 0; T < Nthd; ++T) {
    const Program &P = Physical.Threads[static_cast<size_t>(T)];
    Status S = verifyProgram(P);
    LivenessInfo LI;
    if (S.ok()) {
      LI = computeLiveness(P);
      S = checkNoUseOfUndef(P, LI);
    }
    if (!S.ok()) {
      ThreadOk[static_cast<size_t>(T)] = 0;
      if (StructuralDiags)
        Engine.report(Severity::Error, SafetyCheck, S.message()).Thread =
            P.Name;
      continue;
    }
    for (const BasicBlock &BB : P.Blocks)
      for (const Instruction &I : BB.Instrs) {
        if (I.Def != NoReg)
          Referenced[static_cast<size_t>(T)].set(I.Def);
        if (I.Use1 != NoReg)
          Referenced[static_cast<size_t>(T)].set(I.Use1);
        if (I.Use2 != NoReg)
          Referenced[static_cast<size_t>(T)].set(I.Use2);
      }
    for (Reg R : P.EntryLiveRegs)
      Referenced[static_cast<size_t>(T)].set(R);

    ThreadNSRs[static_cast<size_t>(T)] = computeNSRs(P, LI);
    for (const CSB &Boundary : ThreadNSRs[static_cast<size_t>(T)].getCSBs())
      LiveAcrossCSB[static_cast<size_t>(T)].unionWith(Boundary.LiveAcross);
  }

  // Safety: a register live across thread T's context switches must not be
  // referenced by any other thread. One diagnostic per violated (thread,
  // register, offending thread) triple, witnessed by the first CSB that
  // carries the register and the first offending reference.
  for (int T = 0; T < Nthd; ++T) {
    if (!ThreadOk[static_cast<size_t>(T)])
      continue;
    const Program &P = Physical.Threads[static_cast<size_t>(T)];
    for (int Other = 0; Other < Nthd; ++Other) {
      if (Other == T || !ThreadOk[static_cast<size_t>(Other)])
        continue;
      const Program &OtherP = Physical.Threads[static_cast<size_t>(Other)];
      BitVector Clash = LiveAcrossCSB[static_cast<size_t>(T)];
      Clash.intersectWith(Referenced[static_cast<size_t>(Other)]);
      Clash.forEach([&](int Bad) {
        // Locate the witnessing CSB and count how many carry the register.
        const CSB *Witness = nullptr;
        int NumCarrying = 0;
        for (const CSB &Boundary :
             ThreadNSRs[static_cast<size_t>(T)].getCSBs())
          if (Boundary.LiveAcross.test(Bad)) {
            if (!Witness)
              Witness = &Boundary;
            ++NumCarrying;
          }

        Diagnostic &D = Engine.report(
            Severity::Error, RaceCheck,
            "register p" + std::to_string(Bad) + " is live across " +
                std::to_string(NumCarrying) + " CSB(s) of thread '" + P.Name +
                "' but referenced by thread '" + OtherP.Name + "'");
        D.Thread = P.Name;
        if (Witness) {
          D.Block = Witness->Block;
          D.Instr = Witness->InstrIndex;
          const Instruction &CSBInst =
              P.block(Witness->Block)
                  .Instrs[static_cast<size_t>(Witness->InstrIndex)];
          D.Witness = "CSB '" + formatInstruction(P, CSBInst) + "'";
        }
        int RefBlock = -1, RefInstr = -1;
        if (findFirstReference(OtherP, Bad, RefBlock, RefInstr)) {
          const Instruction &RefInst =
              OtherP.block(RefBlock).Instrs[static_cast<size_t>(RefInstr)];
          D.Witness += (D.Witness.empty() ? "" : "; ") + std::string() +
                       "offending reference in thread '" + OtherP.Name +
                       "', block " + std::to_string(RefBlock) + ", instr " +
                       std::to_string(RefInstr) + ": '" +
                       formatInstruction(OtherP, RefInst) + "'";
        } else {
          D.Witness += (D.Witness.empty() ? "" : "; ") + std::string() +
                       "thread '" + OtherP.Name +
                       "' holds the register entry-live";
        }
      });
    }
  }

  // Absolute-address disjointness: a word some thread *writes* with
  // `storea` (spill slots after graceful degradation) must not be touched
  // by any other thread. Loads alone never clash — two threads reading a
  // shared constant table is fine. Warning severity: workloads may
  // communicate through memory on purpose, but a spilled allocation must
  // never trip this (the spill fallback hands each thread a disjoint
  // scratch window).
  {
    std::map<int64_t, std::vector<int>> Writers, Toucher;
    for (int T = 0; T < Nthd; ++T) {
      if (!ThreadOk[static_cast<size_t>(T)])
        continue;
      const Program &P = Physical.Threads[static_cast<size_t>(T)];
      for (const BasicBlock &BB : P.Blocks)
        for (const Instruction &I : BB.Instrs) {
          if (I.Op == Opcode::StoreA) {
            auto &W = Writers[I.Imm];
            if (W.empty() || W.back() != T)
              W.push_back(T);
          }
          if (I.Op == Opcode::StoreA || I.Op == Opcode::LoadA) {
            auto &U = Toucher[I.Imm];
            if (U.empty() || U.back() != T)
              U.push_back(T);
          }
        }
    }
    for (const auto &KV : Writers)
      for (int Writer : KV.second)
        for (int Other : Toucher[KV.first]) {
          if (Other == Writer)
            continue;
          Diagnostic &D = Engine.report(
              Severity::Warning, AbsOverlapCheck,
              "absolute address " + std::to_string(KV.first) +
                  " is written by thread '" +
                  Physical.Threads[static_cast<size_t>(Writer)].Name +
                  "' and accessed by thread '" +
                  Physical.Threads[static_cast<size_t>(Other)].Name + "'");
          D.Thread = Physical.Threads[static_cast<size_t>(Writer)].Name;
        }
  }

  if (Stats) {
    Stats->PrivateRegCount.clear();
    BitVector Union(NumRegs);
    for (int T = 0; T < Nthd; ++T) {
      Stats->PrivateRegCount.push_back(
          LiveAcrossCSB[static_cast<size_t>(T)].count());
      Union.unionWith(Referenced[static_cast<size_t>(T)]);
    }
    int SharedCount = 0;
    for (int R = 0; R < NumRegs; ++R) {
      int NumUsers = 0;
      for (int T = 0; T < Nthd; ++T)
        if (Referenced[static_cast<size_t>(T)].test(R))
          ++NumUsers;
      if (NumUsers > 1)
        ++SharedCount;
    }
    Stats->SharedRegCount = SharedCount;
    int Touched = 0;
    Union.forEach([&](int R) { Touched = std::max(Touched, R + 1); });
    Stats->RegistersTouched = Touched;
  }
}

Status npral::verifyAllocationSafety(const MultiThreadProgram &Physical,
                                     AllocationSafetyStats *Stats) {
  DiagnosticEngine Engine;
  collectAllocationSafety(Physical, Engine, Stats);
  if (const Diagnostic *D = Engine.firstError())
    return Status::error(D->Message);
  return Status::success();
}
