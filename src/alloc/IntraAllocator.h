//===- IntraAllocator.h - Intra-thread register allocation ------*- C++ -*-===//
///
/// \file
/// The intra-thread register allocator of paper §7: given a budget of PR
/// private and SR shared colors, produce an allocation of the thread's live
/// ranges that respects
///
///   * boundary live ranges (live across some CSB) use colors < PR only,
///   * every live range uses colors < R = PR + SR,
///
/// at minimal move-insertion cost. Three strategies are tried in order:
///
///  1. *Direct*: constrained coloring of the GIG with no moves (cost 0).
///  2. *Greedy splitting* (Fig. 10 spirit): when coloring gets stuck on a
///     boundary node, exclude it from conflicting NSRs (Fig. 12); when
///     stuck on an internal node, split it at block granularity (Fig. 13);
///     re-analyse and retry.
///  3. *Fragment fallback* (Lemma 1): the constructive split-everywhere
///     allocator, feasible whenever PR >= RegPCSBmax and R >= RegPmax.
///
/// The allocator memoises results per (PR, SR), mirroring the paper's
/// incremental "context" reuse across Reduce-PR / Reduce-SR invocations
/// from the inter-thread loop.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_INTRAALLOCATOR_H
#define NPRAL_ALLOC_INTRAALLOCATOR_H

#include "alloc/BoundsEstimator.h"
#include "alloc/FragmentAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "ir/Program.h"
#include "trace/DecisionLog.h"

#include <map>

namespace npral {

/// Intra-thread allocation result: a ColorAllocation plus the strategy that
/// produced it ("direct", "split", "fragment").
struct IntraResult : ColorAllocation {
  std::string Strategy;
};

/// Everything allocation needs that depends only on a thread's content: the
/// full analysis package (liveness, NSR decomposition, GIG/BIG/IIG) plus
/// the §5 register bounds. Once built it is immutable, so one bundle can be
/// shared across allocator instances and across concurrent batch jobs (the
/// driver's AnalysisCache keys bundles by a content hash of the program).
struct ThreadAnalysisBundle {
  ThreadAnalysis TA;
  RegBounds Bounds;
};

/// Analyze \p RenamedP and estimate its bounds. \p RenamedP must already be
/// live-range renamed (renameLiveRanges is idempotent, so renaming twice is
/// safe but wasted work).
ThreadAnalysisBundle computeThreadAnalysisBundle(const Program &RenamedP);

class IntraThreadAllocator {
public:
  /// \p CM prices inserted moves by block frequency; the default unit
  /// model reproduces the unweighted allocator exactly. Weights must refer
  /// to \p P's block IDs.
  explicit IntraThreadAllocator(const Program &P, CostModel CM = CostModel());

  /// Reuse a precomputed analysis instead of recomputing it. \p RenamedP
  /// must already be live-range renamed and \p Pre must have been computed
  /// from exactly this program (the batch driver guarantees both via its
  /// content-hash cache). The analysis bundle is weight-independent, so
  /// any \p CM may be combined with a cached bundle.
  IntraThreadAllocator(const Program &RenamedP,
                       const ThreadAnalysisBundle &Pre,
                       CostModel CM = CostModel());

  /// Allocate with \p PR private and \p SR shared colors; memoised.
  const IntraResult &allocate(int PR, int SR);

  /// Attach a decision log; subsequent cache-miss allocations record their
  /// recolor outcome and any NSR exclusions / block splits under thread
  /// index \p Thread (-1 for a standalone allocator). Cached results record
  /// nothing — the work they describe already happened.
  void setDecisionLog(AllocationDecisionLog *DL, int Thread) {
    Log = DL;
    LogThread = Thread;
  }

  const RegBounds &getBounds() const { return Bounds; }
  int getMinPR() const { return Bounds.MinPR; }
  int getMinR() const { return Bounds.MinR; }
  int getMaxPR() const { return Bounds.MaxPR; }
  int getMaxR() const { return Bounds.MaxR; }
  const Program &getProgram() const { return Original; }
  const ThreadAnalysis &getAnalysis() const { return TA; }
  const CostModel &getCostModel() const { return CM; }

private:
  Program Original;
  ThreadAnalysis TA;
  RegBounds Bounds;
  CostModel CM;
  std::map<std::pair<int, int>, IntraResult> Cache;
  AllocationDecisionLog *Log = nullptr;
  int LogThread = -1;

  IntraResult computeAllocation(int PR, int SR);
  /// Strategy 2; returns an infeasible result when it cannot converge.
  ColorAllocation allocateWithGreedySplitting(int PR, int SR);
};

/// Rewrite \p P's register operands through \p Colors (one color per
/// register); the result has NumRegs = \p NumColors and entry-live colors
/// aligned with P.EntryLiveRegs. Every referenced register must be colored.
Program rewriteToColors(const Program &P, const Coloring &Colors,
                        int NumColors);

} // namespace npral

#endif // NPRAL_ALLOC_INTRAALLOCATOR_H
