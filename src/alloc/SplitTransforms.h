//===- SplitTransforms.h - Live range splitting -----------------*- C++ -*-===//
///
/// \file
/// Live range splitting via move insertion (paper §7.1). Two transforms:
///
///  * NSR exclusion (Fig. 12): carve a boundary live range's portion inside
///    one NSR out into a fresh register; moves at the CSBs where the value
///    crosses in or out keep the original register as the crossing
///    representative. The carved portion typically becomes an internal node
///    and may then use a shared register.
///
///  * Block-level internal split (Fig. 13 at block granularity): rename an
///    internal live range inside a single basic block, with reconciling
///    moves at block entry/exit where the value is live. This reduces the
///    chromatic pressure contributed by long internal ranges.
///
/// Both transforms preserve program semantics; tests verify this by running
/// the simulator on both versions.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_SPLITTRANSFORMS_H
#define NPRAL_ALLOC_SPLITTRANSFORMS_H

#include "analysis/InterferenceGraph.h"
#include "ir/Program.h"
#include "profile/CostModel.h"

#include <cstdint>

namespace npral {

/// Exclude register \p V from NSR \p NSRId: all references to V whose
/// program point lies in that NSR are renamed to a fresh register, and
/// moves are inserted at every CSB where V crosses into or out of the NSR.
/// \p TA must be current for \p P. Returns the fresh register, or NoReg if
/// V has no reference inside the NSR (no-op).
Reg excludeNSR(Program &P, const ThreadAnalysis &TA, Reg V, int NSRId);

/// Cost hint for excludeNSR without performing it: the number of
/// reconciling `mov`s the transform would insert for register \p V and NSR
/// \p NSRId — one per CSB where V crosses into or out of the NSR, plus an
/// entry seed when V is live at a program entry point inside the NSR.
/// Returns -1 when V has no reference inside the NSR (excludeNSR would be
/// a no-op). Used by the intra-thread allocator's pricing and by the lint
/// "over-private" advisor.
int estimateExcludeNSRMoves(const Program &P, const LivenessInfo &LI,
                            const NSRInfo &NSRs, Reg V, int NSRId);

/// Convenience overload over a full ThreadAnalysis.
int estimateExcludeNSRMoves(const Program &P, const ThreadAnalysis &TA, Reg V,
                            int NSRId);

/// Frequency-weighted variant of the cost hint: each reconciling `mov` is
/// priced at the weight of the block it would land in under \p CM. Returns
/// -1 when excludeNSR would be a no-op. With the unit model this equals
/// estimateExcludeNSRMoves.
int64_t estimateExcludeNSRMovesWeighted(const Program &P,
                                        const ThreadAnalysis &TA, Reg V,
                                        int NSRId, const CostModel &CM);

/// Rename \p V inside block \p BlockId to a fresh register, reconciling
/// with moves at block entry (if V is live-in) and before the terminator
/// (if V is live-out). Returns the fresh register, or NoReg if V is not
/// referenced in the block (no-op).
Reg splitInBlock(Program &P, const ThreadAnalysis &TA, Reg V, int BlockId);

} // namespace npral

#endif // NPRAL_ALLOC_SPLITTRANSFORMS_H
