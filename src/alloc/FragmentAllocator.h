//===- FragmentAllocator.h - Constructive Lemma-1 allocator -----*- C++ -*-===//
///
/// \file
/// The constructive counterpart of the paper's Lemma 1: given PR >= MinPR
/// (= RegPCSBmax) and R >= MinR (= RegPmax), produce a valid allocation by
/// splitting live ranges as finely as needed and reconciling with moves.
///
/// The allocator walks each block in reverse post order carrying a
/// register -> color map. Definitions take a free color biased by node
/// class (values that cross CSBs prefer the private band [0, PR); others
/// prefer the shared band [PR, R)). Just before each context-switching
/// instruction every crossing value is moved into a private color if it is
/// not already in one. At CFG junctions where the colors disagree with the
/// already-fixed entry colors of the successor, a sequentialised parallel
/// copy is inserted at the predecessor's end or on a split edge.
///
/// The output program's "registers" *are* colors in [0, R): color c < PR
/// later maps to one of the thread's private physical registers and
/// c >= PR to a globally shared register. Move cost is the number of
/// inserted `mov`s. Because colors change along a live range, this realises
/// exactly the paper's "live range splitting via move insertion" — each
/// color episode is one split segment.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_FRAGMENTALLOCATOR_H
#define NPRAL_ALLOC_FRAGMENTALLOCATOR_H

#include "analysis/InterferenceGraph.h"
#include "ir/Program.h"
#include "profile/CostModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace npral {

/// Result of a fragment allocation (also produced by the other intra-thread
/// strategies; see IntraAllocator.h).
struct ColorAllocation {
  bool Feasible = false;
  /// Why allocation failed (empty when feasible).
  std::string FailReason;
  /// Rewritten program over colors; NumRegs == PR + SR.
  Program ColorProgram;
  /// Number of inserted move instructions.
  int MoveCost = 0;
  /// MoveCost priced by the cost model's block weights; equals MoveCost
  /// under the unit model.
  int64_t WeightedCost = 0;
  /// Per-block weights aligned with ColorProgram's blocks, covering blocks
  /// the allocation created (edge splits inherit their predecessor's
  /// weight). Empty under the unit model.
  std::vector<int64_t> OutputWeights;
  int PR = 0;
  int SR = 0;
};

/// Run the constructive allocator for \p P with \p PR private and \p SR
/// shared colors. \p TA must be the analysis of \p P. Fails (without
/// touching the program) when PR < RegPCSBmax or PR+SR < RegPmax, and in
/// the rare "tight shuffle" case where a reconciling copy cycle has no free
/// scratch color. Inserted ops are priced through \p CM (default: unit).
ColorAllocation allocateByFragments(const Program &P, const ThreadAnalysis &TA,
                                    int PR, int SR,
                                    const CostModel &CM = CostModel());

} // namespace npral

#endif // NPRAL_ALLOC_FRAGMENTALLOCATOR_H
