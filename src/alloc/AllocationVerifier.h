//===- AllocationVerifier.h - Cross-thread safety checks --------*- C++ -*-===//
///
/// \file
/// Independent checker for the safety conditions a multi-threaded
/// allocation must satisfy on the IXP-style machine (paper §2, model
/// property 5). Works purely on the final physical program — it recomputes
/// liveness there, so bugs in the allocator cannot hide behind their own
/// bookkeeping:
///
///  1. every physical register that is live across *any* CSB of thread i
///     is referenced by thread i alone (private);
///  2. within each thread the program is structurally valid and never
///     reads an undefined register;
///  3. an absolute memory word written by one thread (a spill slot after
///     graceful degradation) and touched by another is reported as a
///     warning under check "cross-thread-abs-overlap" — spill scratch must
///     be thread-private, while deliberate shared-memory communication in
///     hand-written workloads stays a reviewable warning, not an error;
///  4. (reported, not enforced) the partition statistics: private count
///     per thread, shared count.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_ALLOCATIONVERIFIER_H
#define NPRAL_ALLOC_ALLOCATIONVERIFIER_H

#include "ir/Program.h"
#include "support/DiagnosticEngine.h"
#include "support/Diagnostics.h"

namespace npral {

/// Statistics gathered while verifying.
struct AllocationSafetyStats {
  /// Registers each thread holds live across one of its CSBs.
  std::vector<int> PrivateRegCount;
  /// Registers referenced by more than one thread.
  int SharedRegCount = 0;
  /// Highest referenced physical register + 1.
  int RegistersTouched = 0;
};

/// Collect *every* cross-thread safety finding of \p Physical into
/// \p Engine instead of stopping at the first. Race findings are emitted
/// under check "cross-thread-race", one error per (thread, register,
/// offending thread) triple, each carrying a witness naming the CSB
/// instruction and one offending reference. Precondition and per-thread
/// structural findings are emitted under check "alloc-safety"; pass
/// \p StructuralDiags = false to gate on them silently instead (the lint
/// driver reports those through its own checkers). \p Stats is filled
/// whenever the preconditions hold, even in the presence of race errors.
void collectAllocationSafety(const MultiThreadProgram &Physical,
                             DiagnosticEngine &Engine,
                             AllocationSafetyStats *Stats = nullptr,
                             bool StructuralDiags = true);

/// Verify the cross-thread safety of \p Physical. All threads must be
/// physical programs over the same register file size. Returns the first
/// violation found, with \p Stats (optional) filled on success. Thin
/// wrapper over collectAllocationSafety for callers that only need a
/// go/no-go answer.
Status verifyAllocationSafety(const MultiThreadProgram &Physical,
                              AllocationSafetyStats *Stats = nullptr);

} // namespace npral

#endif // NPRAL_ALLOC_ALLOCATIONVERIFIER_H
