//===- MoveElimination.cpp ------------------------------------------------===//

#include "alloc/MoveElimination.h"

#include "analysis/Liveness.h"

#include <vector>

using namespace npral;

namespace {

/// One sweep; returns the number of moves removed. \p BlockWeights (may be
/// null) prices each removal by its block's weight into \p WeightedRemoved.
int sweep(Program &P, const std::vector<int64_t> *BlockWeights,
          int64_t &WeightedRemoved) {
  LivenessInfo LI = computeLiveness(P);
  int Removed = 0;

  for (int B = 0; B < P.getNumBlocks(); ++B) {
    BasicBlock &BB = P.block(B);
    // CopyOf[r] = s means "r currently holds the same value as s"; NoReg
    // when unknown. Facts start empty at block entry (no cross-block
    // propagation — deliberately conservative) and die at CSBs.
    std::vector<Reg> CopyOf(static_cast<size_t>(P.NumRegs), NoReg);

    std::vector<Instruction> Kept;
    Kept.reserve(BB.Instrs.size());
    int Index = 0;
    for (const Instruction &I : BB.Instrs) {
      int MyIndex = Index++;
      auto killFactsFor = [&](Reg R) {
        CopyOf[static_cast<size_t>(R)] = NoReg;
        for (Reg Other = 0; Other < P.NumRegs; ++Other)
          if (CopyOf[static_cast<size_t>(Other)] == R)
            CopyOf[static_cast<size_t>(Other)] = NoReg;
      };

      if (I.Op == Opcode::Mov) {
        bool SameReg = I.Def == I.Use1;
        bool KnownEqual =
            CopyOf[static_cast<size_t>(I.Def)] == I.Use1 ||
            (I.Use1 >= 0 && CopyOf[static_cast<size_t>(I.Use1)] == I.Def);
        bool Dead = !LI.instrLiveOut(B, MyIndex).test(I.Def);
        if (SameReg || KnownEqual || Dead) {
          ++Removed;
          if (BlockWeights)
            WeightedRemoved +=
                static_cast<size_t>(B) < BlockWeights->size()
                    ? (*BlockWeights)[static_cast<size_t>(B)]
                    : 1;
          continue; // drop the instruction; facts unchanged
        }
        killFactsFor(I.Def);
        CopyOf[static_cast<size_t>(I.Def)] = I.Use1;
        Kept.push_back(I);
        continue;
      }

      if (I.Def != NoReg)
        killFactsFor(I.Def);
      if (I.causesCtxSwitch()) {
        // While switched out, shared registers may be rewritten by other
        // threads; drop every fact.
        for (Reg R = 0; R < P.NumRegs; ++R)
          CopyOf[static_cast<size_t>(R)] = NoReg;
      }
      Kept.push_back(I);
    }
    BB.Instrs = std::move(Kept);
  }
  return Removed;
}

} // namespace

int npral::eliminateRedundantMoves(Program &P) {
  int64_t Ignored = 0;
  // Removing a dead move can make an earlier move dead; iterate.
  int Total = 0;
  for (;;) {
    int Removed = sweep(P, nullptr, Ignored);
    Total += Removed;
    if (Removed == 0)
      return Total;
  }
}

int npral::eliminateRedundantMoves(Program &P,
                                   const std::vector<int64_t> &BlockWeights,
                                   int64_t &WeightedRemoved) {
  int Total = 0;
  for (;;) {
    int Removed = sweep(P, &BlockWeights, WeightedRemoved);
    Total += Removed;
    if (Removed == 0)
      return Total;
  }
}
