//===- FragmentAllocator.cpp ----------------------------------------------===//

#include "alloc/FragmentAllocator.h"

#include "alloc/ParallelCopy.h"

#include "ir/CFGUtils.h"

#include <algorithm>
#include <cassert>

using namespace npral;

namespace {

/// Per-point register-to-color assignment.
class ColorMap {
public:
  explicit ColorMap(int NumRegs, int NumColors)
      : RegColor(static_cast<size_t>(NumRegs), -1),
        ColorReg(static_cast<size_t>(NumColors), NoReg) {}

  int colorOf(Reg R) const { return RegColor[static_cast<size_t>(R)]; }
  Reg regAt(int C) const { return ColorReg[static_cast<size_t>(C)]; }

  void bind(Reg R, int C) {
    assert(RegColor[static_cast<size_t>(R)] < 0 && "register already bound");
    assert(ColorReg[static_cast<size_t>(C)] == NoReg && "color occupied");
    RegColor[static_cast<size_t>(R)] = C;
    ColorReg[static_cast<size_t>(C)] = R;
  }

  void release(Reg R) {
    int C = RegColor[static_cast<size_t>(R)];
    if (C < 0)
      return;
    RegColor[static_cast<size_t>(R)] = -1;
    ColorReg[static_cast<size_t>(C)] = NoReg;
  }

  void rebind(Reg R, int NewColor) {
    release(R);
    bind(R, NewColor);
  }

  /// Exchange the colors of two bound registers.
  void swapBindings(Reg A, Reg B) {
    int CA = RegColor[static_cast<size_t>(A)];
    int CB = RegColor[static_cast<size_t>(B)];
    assert(CA >= 0 && CB >= 0 && "swap of unbound register");
    RegColor[static_cast<size_t>(A)] = CB;
    RegColor[static_cast<size_t>(B)] = CA;
    ColorReg[static_cast<size_t>(CA)] = B;
    ColorReg[static_cast<size_t>(CB)] = A;
  }

  /// Lowest free color in [Lo, Hi), or -1.
  int findFree(int Lo, int Hi) const {
    for (int C = Lo; C < Hi; ++C)
      if (ColorReg[static_cast<size_t>(C)] == NoReg)
        return C;
    return -1;
  }

private:
  std::vector<int> RegColor;
  std::vector<Reg> ColorReg;
};

class FragmentAllocatorImpl {
public:
  FragmentAllocatorImpl(const Program &P, const ThreadAnalysis &TA, int PR,
                        int SR, const CostModel &Cost)
      : P(P), TA(TA), PR(PR), R(PR + SR), Cost(Cost) {}

  ColorAllocation run();

private:
  const Program &P;
  const ThreadAnalysis &TA;
  const int PR;
  const int R;
  const CostModel &Cost;

  ColorAllocation Result;
  int InsertedOps = 0;
  int64_t WeightedOps = 0;
  /// Weights per output block (original blocks + edge splits); only
  /// maintained under a non-unit model.
  std::vector<int64_t> OutWeights;
  /// Fixed entry color maps: EntryColors[b][reg] = color (-1 unset);
  /// empty vector = block not yet reached.
  std::vector<std::vector<int>> EntryColors;
  /// Pending edge reconciliations: copies needed between Pred's exit state
  /// and Succ's fixed entry state.
  struct EdgeFix {
    int Pred;
    int Succ;
    std::vector<Copy> Copies;
    int Scratch; ///< Free color at the junction, or -1.
  };
  std::vector<EdgeFix> EdgeFixes;

  /// Set when any stage fails; run() and processBlock() bail out promptly.
  bool Aborted = false;

  void fail(const std::string &Reason) {
    Result.Feasible = false;
    Result.FailReason = Reason;
    Aborted = true;
  }

  // Failure-site audit: this allocator trusts its (P, TA, PR, SR) contract,
  // but two classes of violation are reachable from *input* when a caller
  // skips the structural checkers (verifyProgram / checkNoUseOfUndef) —
  // reading a register that was never defined, and liveness that exceeds
  // the guarded bounds because TA was computed for a different program.
  // Those sites fail() gracefully below. The remaining asserts (ColorMap
  // bind/swap discipline, the xor-swap victim search) are pure internal
  // invariants of the coloring algorithm and stay asserts.

  /// Preferred band scan for a node class.
  int chooseColor(const ColorMap &CM, Reg V) const {
    bool Boundary = TA.BoundaryNodes.test(V);
    int C = Boundary ? CM.findFree(0, PR) : CM.findFree(PR, R);
    if (C < 0)
      C = CM.findFree(0, R);
    return C;
  }

  void processBlock(int B, Program &Out);
  void reconcileEdges(Program &Out);
};

ColorAllocation FragmentAllocatorImpl::run() {
  Result.PR = PR;
  Result.SR = R - PR;
  if (PR < TA.getRegPCSBmax()) {
    fail("PR below RegPCSBmax");
    return Result;
  }
  if (R < TA.getRegPmax()) {
    fail("R below RegPmax");
    return Result;
  }

  Program Out;
  Out.Name = P.Name;
  Out.NumRegs = R;
  Out.IsPhysical = false;
  Out.EntryBlock = P.EntryBlock;
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    Out.addBlock(P.blockName(B));
    Out.block(B).FallThrough = P.block(B).FallThrough;
  }

  EntryColors.assign(static_cast<size_t>(P.getNumBlocks()), {});
  if (!Cost.isUnit()) {
    OutWeights.resize(static_cast<size_t>(P.getNumBlocks()), 1);
    for (int B = 0; B < P.getNumBlocks(); ++B)
      OutWeights[static_cast<size_t>(B)] = Cost.blockWeight(B);
  }

  // Seed the entry block from the entry-live registers.
  {
    std::vector<int> &Entry =
        EntryColors[static_cast<size_t>(P.getEntryBlock())];
    Entry.assign(static_cast<size_t>(P.NumRegs), -1);
    ColorMap CM(P.NumRegs, R);
    const BitVector &LiveIn = TA.Liveness.blockLiveIn(P.getEntryBlock());
    // Entry-live registers first, in declaration order, so the harness can
    // line initial values up with Out.EntryLiveRegs.
    for (Reg V : P.EntryLiveRegs) {
      if (!LiveIn.test(V) || Entry[static_cast<size_t>(V)] >= 0)
        continue;
      int C = chooseColor(CM, V);
      if (C < 0) {
        fail("entry pressure exceeds R");
        return Result;
      }
      CM.bind(V, C);
      Entry[static_cast<size_t>(V)] = C;
    }
    LiveIn.forEach([&](int V) {
      if (Aborted || Entry[static_cast<size_t>(V)] >= 0)
        return;
      int C = chooseColor(CM, V);
      if (C < 0) {
        fail("entry pressure exceeds R");
        return;
      }
      CM.bind(V, C);
      Entry[static_cast<size_t>(V)] = C;
    });
    if (Aborted)
      return Result;
    for (Reg V : P.EntryLiveRegs) {
      int C = Entry[static_cast<size_t>(V)];
      // An entry-live register that is dead on arrival still needs a slot
      // for the harness to write its (unused) value into; any free color
      // works.
      if (C < 0)
        C = std::max(0, CM.findFree(0, R));
      Out.EntryLiveRegs.push_back(C);
    }
  }

  for (int B : P.computeRPO()) {
    processBlock(B, Out);
    if (Aborted)
      return Result;
  }
  reconcileEdges(Out);

  Result.ColorProgram = std::move(Out);
  Result.MoveCost = InsertedOps;
  Result.WeightedCost = Cost.isUnit() ? InsertedOps : WeightedOps;
  Result.OutputWeights = std::move(OutWeights);
  Result.Feasible = true;
  return Result;
}

void FragmentAllocatorImpl::processBlock(int B, Program &Out) {
  // Establish entry colors if no processed predecessor reached us (the
  // entry block is pre-seeded; loop headers reached before their back-edge
  // predecessors land here too).
  if (EntryColors[static_cast<size_t>(B)].empty()) {
    std::vector<int> &Entry = EntryColors[static_cast<size_t>(B)];
    Entry.assign(static_cast<size_t>(P.NumRegs), -1);
    ColorMap CM(P.NumRegs, R);
    TA.Liveness.blockLiveIn(B).forEach([&](int V) {
      if (Aborted)
        return;
      int C = chooseColor(CM, V);
      if (C < 0) {
        fail("live-in pressure exceeds R in block '" +
             std::string(P.blockName(B)) + "'");
        return;
      }
      CM.bind(V, C);
      Entry[static_cast<size_t>(V)] = C;
    });
    if (Aborted)
      return;
  }

  ColorMap CM(P.NumRegs, R);
  {
    const std::vector<int> &Entry = EntryColors[static_cast<size_t>(B)];
    TA.Liveness.blockLiveIn(B).forEach([&](int V) {
      assert(Entry[static_cast<size_t>(V)] >= 0 && "live-in without color");
      CM.bind(V, Entry[static_cast<size_t>(V)]);
    });
  }

  const BasicBlock &BB = P.block(B);
  std::vector<Instruction> &OutInstrs = Out.block(B).Instrs;

  for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
    const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];

    // Before a context switch, every crossing value must sit in a private
    // color. Relocate with moves; when everything is tight, swap with a
    // non-crossing private holder via xor (three 1-cycle ops, no scratch).
    if (Inst.causesCtxSwitch()) {
      BitVector Crossing = TA.Liveness.instrLiveOut(B, I);
      if (Inst.Def != NoReg)
        Crossing.reset(Inst.Def);
      if (Crossing.count() > PR) {
        fail("crossing set exceeds PR at CSB in block '" +
             std::string(P.blockName(BB.Id)) + "'");
        return;
      }
      Crossing.forEach([&](int V) {
        if (Aborted || CM.colorOf(V) < PR)
          return;
        int Free = CM.findFree(0, PR);
        if (Free >= 0) {
          OutInstrs.push_back(Instruction::makeMov(Free, CM.colorOf(V)));
          ++InsertedOps;
          WeightedOps += Cost.blockWeight(B);
          CM.rebind(V, Free);
          return;
        }
        // All private colors are held. Since |crossing| <= PR and V itself
        // holds a shared color, some private color is held by a
        // non-crossing value; exchange with it.
        Reg Victim = NoReg;
        for (int C = 0; C < PR; ++C) {
          Reg Holder = CM.regAt(C);
          assert(Holder != NoReg && "free private color missed");
          if (!Crossing.test(Holder)) {
            Victim = Holder;
            break;
          }
        }
        assert(Victim != NoReg && "crossing set exceeds private colors");
        appendXorSwap(OutInstrs, CM.colorOf(Victim), CM.colorOf(V));
        InsertedOps += 3;
        WeightedOps += 3 * Cost.blockWeight(B);
        CM.swapBindings(Victim, V);
      });
    }

    // Emit the instruction over colors. An unbound use means the register
    // was never defined on this path — a checkNoUseOfUndef violation the
    // caller skipped; fail instead of colouring garbage.
    Instruction NewInst = Inst;
    if (Inst.Use1 != NoReg) {
      if (CM.colorOf(Inst.Use1) < 0) {
        fail("use of undefined register '" + P.getRegName(Inst.Use1) +
             "' in block '" + std::string(P.blockName(B)) + "'");
        return;
      }
      NewInst.Use1 = CM.colorOf(Inst.Use1);
    }
    if (Inst.Use2 != NoReg) {
      if (CM.colorOf(Inst.Use2) < 0) {
        fail("use of undefined register '" + P.getRegName(Inst.Use2) +
             "' in block '" + std::string(P.blockName(B)) + "'");
        return;
      }
      NewInst.Use2 = CM.colorOf(Inst.Use2);
    }

    // Kill values that die here (last use), freeing their colors before the
    // definition picks one.
    const BitVector &LiveOut = TA.Liveness.instrLiveOut(B, I);
    std::array<Reg, 2> Uses;
    int NumUses = Inst.getUses(Uses);
    for (int U = 0; U < NumUses; ++U) {
      Reg V = Uses[static_cast<size_t>(U)];
      if (!LiveOut.test(V))
        CM.release(V);
    }

    if (Inst.Def != NoReg) {
      // Redefinition: drop the old binding first.
      CM.release(Inst.Def);
      int C = chooseColor(CM, Inst.Def);
      if (C < 0) {
        fail("pressure exceeds R at definition of '" + P.getRegName(Inst.Def) +
             "' in block '" + std::string(P.blockName(B)) + "'");
        return;
      }
      NewInst.Def = C;
      if (LiveOut.test(Inst.Def))
        CM.bind(Inst.Def, C);
    }
    OutInstrs.push_back(NewInst);
  }

  // Junction handling for each successor.
  for (int S : P.successors(B)) {
    std::vector<int> &SuccEntry = EntryColors[static_cast<size_t>(S)];
    if (SuccEntry.empty()) {
      SuccEntry.assign(static_cast<size_t>(P.NumRegs), -1);
      TA.Liveness.blockLiveIn(S).forEach([&](int V) {
        if (Aborted)
          return;
        if (CM.colorOf(V) < 0) {
          fail("register '" + P.getRegName(V) + "' live into block '" +
               std::string(P.blockName(S)) +
               "' but undefined on the edge from '" +
               std::string(P.blockName(B)) + "'");
          return;
        }
        SuccEntry[static_cast<size_t>(V)] = CM.colorOf(V);
      });
      if (Aborted)
        return;
      continue;
    }
    // Build the reconciling parallel copy.
    EdgeFix Fix;
    Fix.Pred = B;
    Fix.Succ = S;
    BitVector UsedHere(R);
    TA.Liveness.blockLiveIn(S).forEach([&](int V) {
      if (Aborted)
        return;
      int From = CM.colorOf(V);
      int To = SuccEntry[static_cast<size_t>(V)];
      if (From < 0 || To < 0) {
        fail("register '" + P.getRegName(V) + "' live into block '" +
             std::string(P.blockName(S)) +
             "' but undefined on the edge from '" +
             std::string(P.blockName(B)) + "'");
        return;
      }
      UsedHere.set(From);
      UsedHere.set(To);
      if (From != To)
        Fix.Copies.push_back({From, To});
    });
    if (Aborted)
      return;
    if (Fix.Copies.empty())
      continue;
    Fix.Scratch = -1;
    for (int C = 0; C < R; ++C)
      if (!UsedHere.test(C)) {
        Fix.Scratch = C;
        break;
      }
    EdgeFixes.push_back(std::move(Fix));
  }
}

void FragmentAllocatorImpl::reconcileEdges(Program &Out) {
  for (const EdgeFix &Fix : EdgeFixes) {
    std::vector<Instruction> Copies;
    int NumOps = appendParallelCopy(Copies, Fix.Copies, Fix.Scratch);
    InsertedOps += NumOps;
    // The edge executes at most as often as its predecessor, so the
    // predecessor's weight prices the copies wherever they land.
    WeightedOps += static_cast<int64_t>(NumOps) * Cost.blockWeight(Fix.Pred);

    // Placement: end of Pred when it has a single successor, otherwise a
    // fresh block on the edge.
    int Target = Fix.Pred;
    if (P.successors(Fix.Pred).size() > 1) {
      Target = splitEdge(Out, Fix.Pred, Fix.Succ);
      if (!Cost.isUnit()) {
        OutWeights.resize(static_cast<size_t>(Out.getNumBlocks()), 1);
        OutWeights[static_cast<size_t>(Target)] = Cost.blockWeight(Fix.Pred);
      }
    }
    BasicBlock &TB = Out.block(Target);
    int At = getTerminatorGroupBegin(TB);
    TB.Instrs.insert(TB.Instrs.begin() + At, Copies.begin(), Copies.end());
  }
}

} // namespace

ColorAllocation npral::allocateByFragments(const Program &P,
                                           const ThreadAnalysis &TA, int PR,
                                           int SR, const CostModel &CM) {
  return FragmentAllocatorImpl(P, TA, PR, SR, CM).run();
}
