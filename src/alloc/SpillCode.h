//===- SpillCode.h - Spill-code rewriting -----------------------*- C++ -*-===//
///
/// \file
/// Shared spill-code rewriting: demote selected live ranges of a (virtual)
/// thread program to absolute-addressed scratch memory. Every use of a
/// spilled register is preceded by a `loada` into a fresh reload temporary,
/// every definition is followed by a `storea` from a fresh store temporary,
/// and entry-live spilled registers are stored exactly once from a
/// dedicated pre-entry block (the original entry may be a loop header, and
/// a store placed there would re-execute every iteration and keep the
/// spilled register live around the loop).
///
/// On the simulated machine each spill access costs the full memory latency
/// *and* yields the CPU — a context-switch boundary. The inserted
/// temporaries are never live across any CSB (reload temps are defined at
/// their own boundary and consumed in the same NSR; store temps die at the
/// `storea` that reads them), so spilling strictly removes the victim from
/// every CSB crossing set without adding new boundary live ranges.
///
/// Used by the Chaitin/Briggs baseline (spill-everything rounds) and by the
/// harden subsystem's SpillFallback (graceful degradation of the Fig. 8
/// inter-thread loop under infeasible register budgets).
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ALLOC_SPILLCODE_H
#define NPRAL_ALLOC_SPILLCODE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace npral {

/// Outcome of one spill-code rewriting pass.
struct SpillRewrite {
  /// `loada` instructions inserted (one per spilled use site).
  int Loads = 0;
  /// `storea` instructions inserted (defs plus entry-live initialisers).
  int Stores = 0;
  /// The reload/store temporaries created by the rewrite. Temporaries must
  /// never be re-spilled — their live ranges are already minimal.
  std::vector<Reg> Temps;
};

/// Rewrite every reference to the registers in \p Victims through scratch
/// memory. \p SlotOf maps each victim's register ID to its absolute word
/// address (entries for non-victims are ignored; the vector must cover
/// every victim ID). Victims with an entry-live initial value get a one-shot
/// store in a prepended pre-entry block. Registers created by the rewrite
/// have IDs >= the pre-call P.NumRegs and are reported in Temps.
SpillRewrite insertSpillCode(Program &P, const std::vector<Reg> &Victims,
                             const std::vector<int64_t> &SlotOf);

} // namespace npral

#endif // NPRAL_ALLOC_SPILLCODE_H
