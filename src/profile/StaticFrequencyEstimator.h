//===- StaticFrequencyEstimator.h - Loop-nesting weights --------*- C++ -*-===//
///
/// \file
/// The no-profile fallback: synthesize block weights from CFG structure
/// alone. Each block weighs 10^depth where depth is the number of natural
/// loops containing it (back edges found via dominators, see CFGUtils).
/// This is the classic static heuristic — a move hoisted out of a loop is
/// worth ten moves on the straight-line path — and gives `--pgo-static`
/// most of the benefit of a collected profile on loop-structured kernels.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_PROFILE_STATICFREQUENCYESTIMATOR_H
#define NPRAL_PROFILE_STATICFREQUENCYESTIMATOR_H

#include "ir/Program.h"
#include "profile/CostModel.h"

#include <vector>

namespace npral {

/// Per-block static weight estimates for \p P: 10^loop-depth, capped at
/// depth 6 so products with move counts stay far from int64 overflow.
std::vector<int64_t> estimateBlockFrequencies(const Program &P);

/// The estimates packaged as a CostModel (never the unit model — even a
/// loop-free program gets explicit weight-1 entries, marking the model as
/// frequency-aware so the allocators use weighted selection rules).
CostModel estimateCostModel(const Program &P);

} // namespace npral

#endif // NPRAL_PROFILE_STATICFREQUENCYESTIMATOR_H
