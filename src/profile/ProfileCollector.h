//===- ProfileCollector.h - Sim-fed profile collection ----------*- C++ -*-===//
///
/// \file
/// The bridge from the simulator to the profile subsystem: a SimObserver
/// that counts block entries and context-switch-point executions per
/// thread, and packages them as an ExecutionProfile.
///
/// Collection runs on the *virtual* (renamed, pre-allocation) program in
/// the simulator's reference mode, so the block IDs and CSB positions in
/// the profile are exactly the ones the allocators see.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_PROFILE_PROFILECOLLECTOR_H
#define NPRAL_PROFILE_PROFILECOLLECTOR_H

#include "profile/ExecutionProfile.h"
#include "sim/Simulator.h"

namespace npral {

class Counter;

class ProfileCollector : public SimObserver {
public:
  /// Prepares one ThreadProfile per thread of \p MTP, capturing each
  /// thread's name and code hash. \p MTP must outlive the collector only
  /// for the duration of the constructor.
  explicit ProfileCollector(const MultiThreadProgram &MTP);

  void onBlockEntered(int Thread, int Block) override;
  void onCtxSwitchPoint(int Thread, int Block, int Index) override;

  /// The profile accumulated so far. Counts keep accumulating if the
  /// simulator runs again, so two runs observed by one collector produce
  /// the same profile as merging two single-run profiles.
  const ExecutionProfile &getProfile() const { return Profile; }

  /// Move the accumulated profile out, leaving the collector empty.
  ExecutionProfile takeProfile() { return std::move(Profile); }

private:
  ExecutionProfile Profile;
  /// Cached global-registry instruments (references stay valid until a
  /// registry clear; the observer callbacks are too hot for name lookups).
  Counter *BlockEvents = nullptr;
  Counter *SwitchEvents = nullptr;
};

} // namespace npral

#endif // NPRAL_PROFILE_PROFILECOLLECTOR_H
