//===- ExecutionProfile.cpp -----------------------------------------------===//

#include "profile/ExecutionProfile.h"

#include "support/StringUtils.h"

#include <sstream>

using namespace npral;

std::string ExecutionProfile::print() const {
  std::ostringstream OS;
  OS << "npprof 1\n";
  OS << "program " << ProgramName << "\n";
  for (const ThreadProfile &TP : Threads) {
    OS << "thread " << TP.Index << " " << formatString("%016llx",
                                                       (unsigned long long)
                                                           TP.CodeHash)
       << " " << TP.Name << "\n";
    for (const auto &[Block, Count] : TP.BlockCounts)
      OS << "block " << Block << " " << Count << "\n";
    for (const auto &[Point, Count] : TP.SwitchCounts)
      OS << "csb " << Point.first << " " << Point.second << " " << Count
         << "\n";
  }
  OS << "end\n";
  return OS.str();
}

std::string ExecutionProfile::printJSON() const {
  std::ostringstream OS;
  OS << "{\n  \"program\": \"" << ProgramName << "\",\n  \"threads\": [\n";
  for (size_t T = 0; T < Threads.size(); ++T) {
    const ThreadProfile &TP = Threads[T];
    OS << "    {\"index\": " << TP.Index << ", \"name\": \"" << TP.Name
       << "\", \"code_hash\": \""
       << formatString("%016llx", (unsigned long long)TP.CodeHash)
       << "\",\n     \"blocks\": {";
    bool First = true;
    for (const auto &[Block, Count] : TP.BlockCounts) {
      OS << (First ? "" : ", ") << "\"" << Block << "\": " << Count;
      First = false;
    }
    OS << "},\n     \"csbs\": [";
    First = true;
    for (const auto &[Point, Count] : TP.SwitchCounts) {
      OS << (First ? "" : ", ") << "[" << Point.first << ", " << Point.second
         << ", " << Count << "]";
      First = false;
    }
    OS << "]}" << (T + 1 < Threads.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return OS.str();
}

std::optional<ExecutionProfile>
ExecutionProfile::parse(std::string_view Text, std::string &Error) {
  ExecutionProfile P;
  ThreadProfile *Cur = nullptr;
  bool SawHeader = false, SawProgram = false, SawEnd = false;
  int LineNo = 0;

  auto fail = [&](const std::string &Msg) {
    Error = "npprof line " + std::to_string(LineNo) + ": " + Msg;
    return std::nullopt;
  };

  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    Pos = Eol == std::string_view::npos ? Text.size() + 1 : Eol + 1;
    ++LineNo;
    Line = trim(Line);
    if (Line.empty() || Line[0] == '#')
      continue;
    if (SawEnd)
      return fail("content after 'end'");

    std::vector<std::string_view> Tok = split(Line, ' ');
    std::string_view Kw = Tok[0];

    if (!SawHeader) {
      if (Kw != "npprof" || Tok.size() != 2 || Tok[1] != "1")
        return fail("expected 'npprof 1' header");
      SawHeader = true;
      continue;
    }
    if (Kw == "program") {
      if (SawProgram)
        return fail("duplicate 'program' line");
      SawProgram = true;
      // The name is everything after the keyword (may contain spaces).
      P.ProgramName = std::string(trim(Line.substr(Kw.size())));
      continue;
    }
    if (!SawProgram)
      return fail("expected 'program' line");
    if (Kw == "thread") {
      if (Tok.size() < 3)
        return fail("'thread' needs <index> <code-hash> [<name>]");
      std::optional<int64_t> Idx = parseInteger(Tok[1]);
      if (!Idx || *Idx < 0)
        return fail("bad thread index");
      uint64_t Hash = 0;
      for (char C : Tok[2]) {
        int Digit = C >= '0' && C <= '9'   ? C - '0'
                    : C >= 'a' && C <= 'f' ? C - 'a' + 10
                    : C >= 'A' && C <= 'F' ? C - 'A' + 10
                                           : -1;
        if (Digit < 0)
          return fail("bad code hash");
        Hash = (Hash << 4) | static_cast<uint64_t>(Digit);
      }
      ThreadProfile TP;
      TP.Index = static_cast<int>(*Idx);
      TP.CodeHash = Hash;
      // The name is the remainder of the line after the hash token (the
      // token views alias Line, so pointer arithmetic gives its offset).
      size_t NameAt =
          static_cast<size_t>(Tok[2].data() - Line.data()) + Tok[2].size();
      TP.Name = std::string(trim(Line.substr(NameAt)));
      P.Threads.push_back(std::move(TP));
      Cur = &P.Threads.back();
      continue;
    }
    if (Kw == "block") {
      if (!Cur)
        return fail("'block' before any 'thread'");
      std::optional<int64_t> Block =
          Tok.size() == 3 ? parseInteger(Tok[1]) : std::nullopt;
      std::optional<int64_t> Count =
          Tok.size() == 3 ? parseInteger(Tok[2]) : std::nullopt;
      if (!Block || !Count || *Block < 0 || *Count < 0)
        return fail("'block' needs <block-id> <count>");
      if (!Cur->BlockCounts.emplace(static_cast<int>(*Block), *Count).second)
        return fail("duplicate 'block' entry");
      continue;
    }
    if (Kw == "csb") {
      if (!Cur)
        return fail("'csb' before any 'thread'");
      std::optional<int64_t> Block =
          Tok.size() == 4 ? parseInteger(Tok[1]) : std::nullopt;
      std::optional<int64_t> Index =
          Tok.size() == 4 ? parseInteger(Tok[2]) : std::nullopt;
      std::optional<int64_t> Count =
          Tok.size() == 4 ? parseInteger(Tok[3]) : std::nullopt;
      if (!Block || !Index || !Count || *Block < 0 || *Index < 0 ||
          *Count < 0)
        return fail("'csb' needs <block-id> <instr-index> <count>");
      std::pair<int, int> Key{static_cast<int>(*Block),
                              static_cast<int>(*Index)};
      if (!Cur->SwitchCounts.emplace(Key, *Count).second)
        return fail("duplicate 'csb' entry");
      continue;
    }
    if (Kw == "end") {
      if (Tok.size() != 1)
        return fail("trailing tokens after 'end'");
      SawEnd = true;
      continue;
    }
    return fail("unknown keyword '" + std::string(Kw) + "'");
  }
  if (!SawHeader)
    return fail("empty profile");
  if (!SawEnd)
    return fail("missing 'end'");
  return P;
}

bool ExecutionProfile::merge(const ExecutionProfile &Other,
                             std::string &Error) {
  if (ProgramName != Other.ProgramName) {
    Error = "program name mismatch: '" + ProgramName + "' vs '" +
            Other.ProgramName + "'";
    return false;
  }
  if (Threads.size() != Other.Threads.size()) {
    Error = "thread count mismatch";
    return false;
  }
  for (size_t T = 0; T < Threads.size(); ++T) {
    const ThreadProfile &A = Threads[T], &B = Other.Threads[T];
    if (A.Index != B.Index || A.Name != B.Name || A.CodeHash != B.CodeHash) {
      Error = "thread " + std::to_string(T) +
              " identity mismatch (index/name/code hash)";
      return false;
    }
  }
  for (size_t T = 0; T < Threads.size(); ++T) {
    ThreadProfile &A = Threads[T];
    const ThreadProfile &B = Other.Threads[T];
    for (const auto &[Block, Count] : B.BlockCounts)
      A.BlockCounts[Block] += Count;
    for (const auto &[Point, Count] : B.SwitchCounts)
      A.SwitchCounts[Point] += Count;
  }
  return true;
}

uint64_t ExecutionProfile::contentHash() const { return fnv1aHash(print()); }

const ThreadProfile *
ExecutionProfile::findByCodeHash(uint64_t CodeHash) const {
  for (const ThreadProfile &TP : Threads)
    if (TP.CodeHash == CodeHash)
      return &TP;
  return nullptr;
}

CostModel ExecutionProfile::costModel(int Thread, int NumBlocks) const {
  CostModel CM;
  if (Thread < 0 || static_cast<size_t>(Thread) >= Threads.size())
    return CM;
  const ThreadProfile &TP = Threads[static_cast<size_t>(Thread)];
  for (int B = 0; B < NumBlocks; ++B)
    CM.setBlockWeight(B, TP.blockCount(B));
  return CM;
}
