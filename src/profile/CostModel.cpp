//===- CostModel.cpp ------------------------------------------------------===//

#include "profile/CostModel.h"

#include <cassert>

using namespace npral;

void CostModel::setBlockWeight(int Block, int64_t Weight) {
  assert(Block >= 0 && "negative block id");
  assert(Weight >= 0 && "negative block weight");
  if (static_cast<size_t>(Block) >= Weights.size())
    Weights.resize(static_cast<size_t>(Block) + 1, 1);
  Weights[static_cast<size_t>(Block)] = Weight;
}
