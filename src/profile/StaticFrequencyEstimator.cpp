//===- StaticFrequencyEstimator.cpp ---------------------------------------===//

#include "profile/StaticFrequencyEstimator.h"

#include "ir/CFGUtils.h"

#include <algorithm>

using namespace npral;

std::vector<int64_t> npral::estimateBlockFrequencies(const Program &P) {
  std::vector<int> Depths = computeLoopDepths(P);
  std::vector<int64_t> Weights(Depths.size(), 1);
  for (size_t B = 0; B < Depths.size(); ++B) {
    int D = std::min(Depths[B], 6);
    int64_t W = 1;
    for (int I = 0; I < D; ++I)
      W *= 10;
    Weights[B] = W;
  }
  return Weights;
}

CostModel npral::estimateCostModel(const Program &P) {
  CostModel CM;
  std::vector<int64_t> Weights = estimateBlockFrequencies(P);
  for (size_t B = 0; B < Weights.size(); ++B)
    CM.setBlockWeight(static_cast<int>(B), Weights[B]);
  if (CM.size() == 0 && P.getNumBlocks() == 0)
    CM.setBlockWeight(0, 1); // keep the model explicitly non-unit
  return CM;
}
