//===- ProfileCollector.cpp -----------------------------------------------===//

#include "profile/ProfileCollector.h"

#include "ir/IRPrinter.h"
#include "support/StringUtils.h"
#include "trace/MetricsRegistry.h"

using namespace npral;

ProfileCollector::ProfileCollector(const MultiThreadProgram &MTP)
    : BlockEvents(
          &MetricsRegistry::global().counter("profile.block_events")),
      SwitchEvents(
          &MetricsRegistry::global().counter("profile.ctx_switch_points")) {
  Profile.ProgramName = MTP.Name;
  Profile.Threads.reserve(MTP.Threads.size());
  for (int T = 0; T < MTP.getNumThreads(); ++T) {
    ThreadProfile TP;
    TP.Index = T;
    TP.Name = MTP.Threads[static_cast<size_t>(T)].Name;
    TP.CodeHash =
        fnv1aHash(programToString(MTP.Threads[static_cast<size_t>(T)]));
    Profile.Threads.push_back(std::move(TP));
  }
}

void ProfileCollector::onBlockEntered(int Thread, int Block) {
  if (Thread < 0 || static_cast<size_t>(Thread) >= Profile.Threads.size())
    return;
  ++Profile.Threads[static_cast<size_t>(Thread)].BlockCounts[Block];
  BlockEvents->increment();
}

void ProfileCollector::onCtxSwitchPoint(int Thread, int Block, int Index) {
  if (Thread < 0 || static_cast<size_t>(Thread) >= Profile.Threads.size())
    return;
  ++Profile.Threads[static_cast<size_t>(Thread)]
        .SwitchCounts[{Block, Index}];
  SwitchEvents->increment();
}
