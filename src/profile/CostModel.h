//===- CostModel.h - Frequency-weighted move-cost model ---------*- C++ -*-===//
///
/// \file
/// The profile subsystem's contract with the allocators: a per-thread map
/// from basic blocks to execution-frequency weights, and the WeightedMoveCost
/// every allocation strategy reports through.
///
/// A move inserted into block b costs `blockWeight(b)` weighted units — one
/// per dynamic execution under a collected profile, 10^loop-depth under the
/// static estimator, and exactly 1 under the default *unit* model. The
/// allocators compare weighted costs wherever they used to compare raw move
/// counts, so with the unit model every decision (and therefore every output
/// program) is bit-identical to the unweighted allocator.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_PROFILE_COSTMODEL_H
#define NPRAL_PROFILE_COSTMODEL_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace npral {

/// A move-insertion cost under a cost model: the raw instruction count the
/// paper reports, plus the frequency-weighted dynamic cost the inter-thread
/// allocator minimises. Under the unit model Weighted == Moves.
struct WeightedMoveCost {
  int Moves = 0;
  int64_t Weighted = 0;
};

/// Per-thread block-frequency weights. Default-constructed it is the *unit*
/// model (every block weighs 1); profile- or estimator-built models carry
/// one weight per block of the thread they were built for. Blocks created
/// after construction (edge splits during allocation) fall back to the
/// weight the creator registers via setBlockWeight, or 1.
class CostModel {
public:
  /// The unit model: every block weighs 1. This is the identity element —
  /// allocating under it reproduces the unweighted allocator bit-for-bit.
  CostModel() = default;

  /// True when every block weighs 1 (i.e. no profile data was attached).
  /// The allocators keep their historical tie-breaking rules in this case.
  bool isUnit() const { return Weights.empty(); }

  /// Weight of block \p Block; 1 for blocks beyond the known range.
  int64_t blockWeight(int Block) const {
    if (Block < 0 || static_cast<size_t>(Block) >= Weights.size())
      return 1;
    return Weights[static_cast<size_t>(Block)];
  }

  /// Set the weight of \p Block, growing the map as needed (new slots
  /// default to 1). Negative weights are invalid.
  void setBlockWeight(int Block, int64_t Weight);

  /// Number of blocks with an explicit weight.
  int size() const { return static_cast<int>(Weights.size()); }

private:
  std::vector<int64_t> Weights; ///< Empty = unit model.
};

} // namespace npral

#endif // NPRAL_PROFILE_COSTMODEL_H
