//===- ExecutionProfile.h - .npprof execution profiles ----------*- C++ -*-===//
///
/// \file
/// The on-disk and in-memory representation of a simulated execution
/// profile: per-thread basic-block execution counts and per-CSB switch
/// counts, collected by ProfileCollector and consumed by the allocators
/// through CostModel.
///
/// Profiles serialize to a line-oriented text format (`.npprof`):
///
/// \code
///   npprof 1
///   program <name>
///   thread <index> <code-hash-hex> <name>
///   block <block-id> <count>
///   csb <block-id> <instr-index> <count>
///   end
/// \endcode
///
/// `block` and `csb` lines belong to the most recent `thread` line and are
/// emitted in ascending key order, so print(parse(T)) == T for any valid T
/// (serialization is a fixed point). The code hash is the FNV-1a hash of
/// the printed thread program — the same hash the analysis cache uses — so
/// a profile can be matched against a program by content, not by name.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_PROFILE_EXECUTIONPROFILE_H
#define NPRAL_PROFILE_EXECUTIONPROFILE_H

#include "profile/CostModel.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace npral {

/// Execution counts for one thread of a MultiThreadProgram.
struct ThreadProfile {
  int Index = 0;
  std::string Name;
  /// FNV-1a hash of the printed thread program the counts were collected
  /// on. Consumers refuse to apply a profile to a thread whose code hash
  /// differs — block IDs would not line up.
  uint64_t CodeHash = 0;
  /// Times each basic block was entered. Blocks never executed may be
  /// absent (equivalent to count 0).
  std::map<int, int64_t> BlockCounts;
  /// Times each context-switch point (block, instruction index) executed.
  std::map<std::pair<int, int>, int64_t> SwitchCounts;

  int64_t blockCount(int Block) const {
    auto It = BlockCounts.find(Block);
    return It == BlockCounts.end() ? 0 : It->second;
  }
};

/// A full execution profile of one MultiThreadProgram run (or the merge of
/// several runs of the same program).
class ExecutionProfile {
public:
  std::string ProgramName;
  std::vector<ThreadProfile> Threads;

  int getNumThreads() const { return static_cast<int>(Threads.size()); }

  /// Serialize to the canonical `.npprof` text form. Byte-stable: maps are
  /// emitted in key order, so printing a parsed profile reproduces the
  /// input exactly.
  std::string print() const;

  /// Serialize to JSON (for tooling; not parsed back).
  std::string printJSON() const;

  /// Parse the text form. Returns std::nullopt and sets \p Error on
  /// malformed input.
  static std::optional<ExecutionProfile> parse(std::string_view Text,
                                               std::string &Error);

  /// Accumulate \p Other into this profile. Both must describe the same
  /// program: same thread count and, per thread, same name and code hash.
  /// Counts are summed, so merging the profiles of two runs equals the
  /// profile of one run that executed both workloads back to back.
  /// Returns false and sets \p Error on shape mismatch.
  bool merge(const ExecutionProfile &Other, std::string &Error);

  /// FNV-1a hash of the printed form; folded into analysis-cache keys so
  /// cached bundles are keyed by (program, profile) pairs.
  uint64_t contentHash() const;

  /// Find the thread profile whose code hash is \p CodeHash (nullptr when
  /// absent). Batch mode uses this to match profiles to programs by
  /// content rather than position.
  const ThreadProfile *findByCodeHash(uint64_t CodeHash) const;

  /// Build the cost model for thread \p Thread: block weight = execution
  /// count (0 for never-executed blocks). Out-of-range \p Thread yields
  /// the unit model.
  CostModel costModel(int Thread, int NumBlocks) const;
};

} // namespace npral

#endif // NPRAL_PROFILE_EXECUTIONPROFILE_H
