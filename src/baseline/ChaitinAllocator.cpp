//===- ChaitinAllocator.cpp -----------------------------------------------===//

#include "baseline/ChaitinAllocator.h"

#include "alloc/ColoringUtils.h"
#include "alloc/SpillCode.h"
#include "analysis/LiveRangeRenaming.h"
#include "alloc/IntraAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "ir/CFGUtils.h"

#include <algorithm>
#include <cassert>

using namespace npral;

namespace {

/// One build-simplify-select round. Returns true and fills \p Colors when
/// everything colored; otherwise fills \p ToSpill with the ranges chosen
/// for spilling.
bool colorOnce(const Program &P, const ThreadAnalysis &TA, int K,
               const std::vector<char> &NoSpill, Coloring &Colors,
               std::vector<Reg> &ToSpill) {
  const InterferenceGraph &IG = TA.GIG;
  const int N = IG.getNumNodes();

  // Reference counts approximate spill cost.
  std::vector<int> RefCount(static_cast<size_t>(N), 0);
  for (const BasicBlock &BB : P.Blocks)
    for (const Instruction &I : BB.Instrs) {
      if (I.Def != NoReg)
        ++RefCount[static_cast<size_t>(I.Def)];
      if (I.Use1 != NoReg)
        ++RefCount[static_cast<size_t>(I.Use1)];
      if (I.Use2 != NoReg)
        ++RefCount[static_cast<size_t>(I.Use2)];
    }

  std::vector<int> Degree(static_cast<size_t>(N), 0);
  std::vector<char> InGraph(static_cast<size_t>(N), 0);
  int Remaining = 0;
  TA.ReferencedNodes.forEach([&](int Node) {
    InGraph[static_cast<size_t>(Node)] = 1;
    ++Remaining;
  });
  for (int Node = 0; Node < N; ++Node) {
    if (!InGraph[static_cast<size_t>(Node)])
      continue;
    int D = 0;
    IG.neighbors(Node).forEach([&](int Nb) {
      if (InGraph[static_cast<size_t>(Nb)])
        ++D;
    });
    Degree[static_cast<size_t>(Node)] = D;
  }

  // Simplify with optimistic (Briggs) spill candidates.
  std::vector<int> Stack;
  std::vector<char> IsCandidate(static_cast<size_t>(N), 0);
  std::vector<char> Removed(static_cast<size_t>(N), 0);
  auto removeNode = [&](int Node) {
    Removed[static_cast<size_t>(Node)] = 1;
    --Remaining;
    IG.neighbors(Node).forEach([&](int Nb) {
      if (InGraph[static_cast<size_t>(Nb)] && !Removed[static_cast<size_t>(Nb)])
        --Degree[static_cast<size_t>(Nb)];
    });
    Stack.push_back(Node);
  };

  while (Remaining > 0) {
    int Trivial = -1;
    for (int Node = 0; Node < N; ++Node)
      if (InGraph[static_cast<size_t>(Node)] &&
          !Removed[static_cast<size_t>(Node)] &&
          Degree[static_cast<size_t>(Node)] < K) {
        Trivial = Node;
        break;
      }
    if (Trivial >= 0) {
      removeNode(Trivial);
      continue;
    }
    // Pick the cheapest spill candidate: min refcount/degree ratio, never a
    // node marked no-spill (spill temps).
    int Best = -1;
    double BestScore = 0;
    for (int Node = 0; Node < N; ++Node) {
      if (!InGraph[static_cast<size_t>(Node)] ||
          Removed[static_cast<size_t>(Node)])
        continue;
      if (NoSpill[static_cast<size_t>(Node)])
        continue;
      double Score = static_cast<double>(RefCount[static_cast<size_t>(Node)]) /
                     std::max(1, Degree[static_cast<size_t>(Node)]);
      if (Best < 0 || Score < BestScore) {
        Best = Node;
        BestScore = Score;
      }
    }
    if (Best < 0) {
      // Only no-spill nodes remain with high degree; push one optimistically
      // anyway (it usually colors).
      for (int Node = 0; Node < N; ++Node)
        if (InGraph[static_cast<size_t>(Node)] &&
            !Removed[static_cast<size_t>(Node)]) {
          Best = Node;
          break;
        }
    }
    assert(Best >= 0 && "simplify stuck with no nodes");
    IsCandidate[static_cast<size_t>(Best)] = 1;
    removeNode(Best);
  }

  // Select.
  Colors.assign(static_cast<size_t>(N), NoColor);
  ToSpill.clear();
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    int Node = *It;
    int C = pickFreeColor(IG, Colors, Node, 0, K);
    if (C != NoColor) {
      Colors[static_cast<size_t>(Node)] = C;
      continue;
    }
    assert(IsCandidate[static_cast<size_t>(Node)] &&
           "non-candidate failed to color");
    ToSpill.push_back(Node);
  }
  return ToSpill.empty();
}

} // namespace

ChaitinResult npral::runChaitinAllocator(const Program &P,
                                         const ChaitinConfig &C) {
  ChaitinResult Result;
  Program Work = renameLiveRanges(P);
  std::vector<char> NoSpill(static_cast<size_t>(Work.NumRegs), 0);
  std::vector<int64_t> SlotOf(static_cast<size_t>(Work.NumRegs), 0);
  int NextSlot = 0;

  for (int Round = 0; Round < C.MaxRounds; ++Round) {
    Result.Rounds = Round + 1;
    ThreadAnalysis TA = analyzeThread(Work);
    Coloring Colors;
    std::vector<Reg> ToSpill;
    NoSpill.resize(static_cast<size_t>(Work.NumRegs), 0);
    if (colorOnce(Work, TA, C.NumColors, NoSpill, Colors, ToSpill)) {
      int MaxColor = -1;
      for (int Col : Colors)
        MaxColor = std::max(MaxColor, Col);
      Result.ColorsUsed = MaxColor + 1;
      Result.Allocated = rewriteToColors(Work, Colors, C.NumColors);
      Result.Success = true;
      return Result;
    }
    // Assign slots and spill.
    if (getenv("NPRAL_DEBUG_SPILL")) {
      fprintf(stderr, "round %d spills:", Round);
      for (Reg V : ToSpill)
        fprintf(stderr, " %s(id=%d,deg=%d)", Work.getRegName(V).c_str(), V,
                TA.GIG.degree(V));
      fprintf(stderr, "\n");
    }
    SlotOf.resize(static_cast<size_t>(Work.NumRegs), 0);
    for (Reg V : ToSpill) {
      SlotOf[static_cast<size_t>(V)] = C.SpillBase + NextSlot++;
      ++Result.SpilledRanges;
    }
    SpillRewrite SR = insertSpillCode(Work, ToSpill, SlotOf);
    Result.SpillLoads += SR.Loads;
    Result.SpillStores += SR.Stores;
    NoSpill.resize(static_cast<size_t>(Work.NumRegs), 0);
    for (Reg T : SR.Temps)
      NoSpill[static_cast<size_t>(T)] = 1;
  }

  Result.Success = false;
  Result.FailReason = "spilling did not converge within round budget";
  return Result;
}

MultiThreadProgram npral::materializeBaseline(
    const std::vector<Program> &Allocated, int NumColors,
    const std::string &Name) {
  MultiThreadProgram Physical;
  Physical.Name = Name;
  const int Nthd = static_cast<int>(Allocated.size());
  const int Nreg = NumColors * Nthd;
  for (int T = 0; T < Nthd; ++T) {
    const Program &CP = Allocated[static_cast<size_t>(T)];
    const int Base = T * NumColors;
    Program Phys;
    Phys.Name = CP.Name;
    Phys.NumRegs = Nreg;
    Phys.IsPhysical = true;
    Phys.EntryBlock = CP.EntryBlock;
    for (int B = 0; B < CP.getNumBlocks(); ++B) {
      const BasicBlock &BB = CP.block(B);
      int NewB = Phys.addBlock(CP.blockName(BB.Id));
      Phys.block(NewB).FallThrough = BB.FallThrough;
      for (const Instruction &I : BB.Instrs) {
        Instruction NewI = I;
        if (I.Def != NoReg)
          NewI.Def = Base + I.Def;
        if (I.Use1 != NoReg)
          NewI.Use1 = Base + I.Use1;
        if (I.Use2 != NoReg)
          NewI.Use2 = Base + I.Use2;
        Phys.block(NewB).Instrs.push_back(NewI);
      }
    }
    for (Reg C : CP.EntryLiveRegs)
      Phys.EntryLiveRegs.push_back(Base + C);
    Physical.Threads.push_back(std::move(Phys));
  }
  return Physical;
}
