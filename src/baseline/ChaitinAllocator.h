//===- ChaitinAllocator.h - Spilling baseline -------------------*- C++ -*-===//
///
/// \file
/// The comparison baseline: a Chaitin/Briggs-style graph-coloring register
/// allocator with spill code generation, matching what the paper describes
/// the production IXP compiler doing — every thread gets a fixed private
/// partition of the register file (32 of 128 GPRs for 4 threads) and no
/// registers are shared across threads; excess pressure spills to memory.
///
/// Spill code uses absolute-addressed `loada`/`storea` so no base register
/// is consumed; on the simulated machine each spill access costs the full
/// memory latency *and* yields the CPU, which is exactly the effect the
/// paper's Table 3 quantifies.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_BASELINE_CHAITINALLOCATOR_H
#define NPRAL_BASELINE_CHAITINALLOCATOR_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace npral {

struct ChaitinConfig {
  /// Registers available to this thread (its fixed partition).
  int NumColors = 32;
  /// Absolute address of the first spill slot (thread-local region).
  int64_t SpillBase = 0;
  /// Give up after this many spill-and-retry rounds.
  int MaxRounds = 64;
};

struct ChaitinResult {
  bool Success = false;
  std::string FailReason;
  /// Allocated program over colors [0, NumColors).
  Program Allocated;
  /// Number of distinct live ranges sent to memory.
  int SpilledRanges = 0;
  /// Spill instructions inserted (each is a context-switching memory op).
  int SpillLoads = 0;
  int SpillStores = 0;
  /// Colors actually used.
  int ColorsUsed = 0;
  /// Rounds of build-color-spill needed.
  int Rounds = 0;
};

/// Run the baseline allocator on one thread.
ChaitinResult runChaitinAllocator(const Program &P, const ChaitinConfig &C);

/// Place each allocated thread in its own fixed partition of \p NumColors
/// physical registers (thread i gets [i*NumColors, (i+1)*NumColors)), the
/// paper's "no sharing" production layout.
MultiThreadProgram materializeBaseline(const std::vector<Program> &Allocated,
                                       int NumColors,
                                       const std::string &Name);

} // namespace npral

#endif // NPRAL_BASELINE_CHAITINALLOCATOR_H
