
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pressure_explorer.cpp" "examples/CMakeFiles/pressure_explorer.dir/pressure_explorer.cpp.o" "gcc" "examples/CMakeFiles/pressure_explorer.dir/pressure_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/npral_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/asmparse/CMakeFiles/npral_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/npral_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/npral_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/npral_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npral_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/npral_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npral_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
