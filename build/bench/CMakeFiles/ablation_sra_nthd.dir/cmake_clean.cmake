file(REMOVE_RECURSE
  "CMakeFiles/ablation_sra_nthd.dir/ablation_sra_nthd.cpp.o"
  "CMakeFiles/ablation_sra_nthd.dir/ablation_sra_nthd.cpp.o.d"
  "ablation_sra_nthd"
  "ablation_sra_nthd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sra_nthd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
