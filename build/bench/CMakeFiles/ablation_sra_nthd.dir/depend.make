# Empty dependencies file for ablation_sra_nthd.
# This may be replaced when dependencies are built.
