file(REMOVE_RECURSE
  "CMakeFiles/ablation_nreg.dir/ablation_nreg.cpp.o"
  "CMakeFiles/ablation_nreg.dir/ablation_nreg.cpp.o.d"
  "ablation_nreg"
  "ablation_nreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
