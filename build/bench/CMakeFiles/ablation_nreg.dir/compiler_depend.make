# Empty compiler generated dependencies file for ablation_nreg.
# This may be replaced when dependencies are built.
