file(REMOVE_RECURSE
  "CMakeFiles/alloc_compile_time.dir/alloc_compile_time.cpp.o"
  "CMakeFiles/alloc_compile_time.dir/alloc_compile_time.cpp.o.d"
  "alloc_compile_time"
  "alloc_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
