# Empty compiler generated dependencies file for alloc_compile_time.
# This may be replaced when dependencies are built.
