# Empty dependencies file for fig14_sra.
# This may be replaced when dependencies are built.
