file(REMOVE_RECURSE
  "CMakeFiles/fig14_sra.dir/fig14_sra.cpp.o"
  "CMakeFiles/fig14_sra.dir/fig14_sra.cpp.o.d"
  "fig14_sra"
  "fig14_sra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
