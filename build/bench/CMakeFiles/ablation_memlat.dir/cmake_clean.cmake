file(REMOVE_RECURSE
  "CMakeFiles/ablation_memlat.dir/ablation_memlat.cpp.o"
  "CMakeFiles/ablation_memlat.dir/ablation_memlat.cpp.o.d"
  "ablation_memlat"
  "ablation_memlat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memlat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
