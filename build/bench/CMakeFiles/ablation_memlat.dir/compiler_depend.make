# Empty compiler generated dependencies file for ablation_memlat.
# This may be replaced when dependencies are built.
