file(REMOVE_RECURSE
  "CMakeFiles/table3_ara.dir/table3_ara.cpp.o"
  "CMakeFiles/table3_ara.dir/table3_ara.cpp.o.d"
  "table3_ara"
  "table3_ara.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ara.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
