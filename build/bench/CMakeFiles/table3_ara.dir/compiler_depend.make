# Empty compiler generated dependencies file for table3_ara.
# This may be replaced when dependencies are built.
