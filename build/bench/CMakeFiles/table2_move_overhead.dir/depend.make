# Empty dependencies file for table2_move_overhead.
# This may be replaced when dependencies are built.
