file(REMOVE_RECURSE
  "CMakeFiles/ablation_splitting.dir/ablation_splitting.cpp.o"
  "CMakeFiles/ablation_splitting.dir/ablation_splitting.cpp.o.d"
  "ablation_splitting"
  "ablation_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
