# Empty dependencies file for nsr_test.
# This may be replaced when dependencies are built.
