file(REMOVE_RECURSE
  "CMakeFiles/nsr_test.dir/analysis/NSRTest.cpp.o"
  "CMakeFiles/nsr_test.dir/analysis/NSRTest.cpp.o.d"
  "nsr_test"
  "nsr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
