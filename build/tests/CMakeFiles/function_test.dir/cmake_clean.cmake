file(REMOVE_RECURSE
  "CMakeFiles/function_test.dir/asmparse/FunctionTest.cpp.o"
  "CMakeFiles/function_test.dir/asmparse/FunctionTest.cpp.o.d"
  "function_test"
  "function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
