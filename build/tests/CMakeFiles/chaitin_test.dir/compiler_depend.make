# Empty compiler generated dependencies file for chaitin_test.
# This may be replaced when dependencies are built.
