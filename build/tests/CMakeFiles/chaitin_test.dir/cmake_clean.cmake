file(REMOVE_RECURSE
  "CMakeFiles/chaitin_test.dir/baseline/ChaitinTest.cpp.o"
  "CMakeFiles/chaitin_test.dir/baseline/ChaitinTest.cpp.o.d"
  "chaitin_test"
  "chaitin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaitin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
