file(REMOVE_RECURSE
  "CMakeFiles/interalloc_edge_test.dir/alloc/InterAllocatorEdgeTest.cpp.o"
  "CMakeFiles/interalloc_edge_test.dir/alloc/InterAllocatorEdgeTest.cpp.o.d"
  "interalloc_edge_test"
  "interalloc_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interalloc_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
