# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for interalloc_edge_test.
