# Empty dependencies file for interalloc_edge_test.
# This may be replaced when dependencies are built.
