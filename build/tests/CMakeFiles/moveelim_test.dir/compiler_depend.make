# Empty compiler generated dependencies file for moveelim_test.
# This may be replaced when dependencies are built.
