file(REMOVE_RECURSE
  "CMakeFiles/moveelim_test.dir/alloc/MoveEliminationTest.cpp.o"
  "CMakeFiles/moveelim_test.dir/alloc/MoveEliminationTest.cpp.o.d"
  "moveelim_test"
  "moveelim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moveelim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
