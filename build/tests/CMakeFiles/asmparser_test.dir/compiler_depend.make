# Empty compiler generated dependencies file for asmparser_test.
# This may be replaced when dependencies are built.
