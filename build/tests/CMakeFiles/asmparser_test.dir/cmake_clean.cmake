file(REMOVE_RECURSE
  "CMakeFiles/asmparser_test.dir/asmparse/AsmParserTest.cpp.o"
  "CMakeFiles/asmparser_test.dir/asmparse/AsmParserTest.cpp.o.d"
  "asmparser_test"
  "asmparser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmparser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
