file(REMOVE_RECURSE
  "CMakeFiles/invariant_test.dir/integration/InvariantPropertyTest.cpp.o"
  "CMakeFiles/invariant_test.dir/integration/InvariantPropertyTest.cpp.o.d"
  "invariant_test"
  "invariant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
