file(REMOVE_RECURSE
  "CMakeFiles/liveness_test.dir/analysis/LivenessTest.cpp.o"
  "CMakeFiles/liveness_test.dir/analysis/LivenessTest.cpp.o.d"
  "liveness_test"
  "liveness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
