# Empty compiler generated dependencies file for npralc.
# This may be replaced when dependencies are built.
