file(REMOVE_RECURSE
  "CMakeFiles/npralc.dir/npralc.cpp.o"
  "CMakeFiles/npralc.dir/npralc.cpp.o.d"
  "npralc"
  "npralc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npralc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
