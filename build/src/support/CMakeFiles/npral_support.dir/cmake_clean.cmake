file(REMOVE_RECURSE
  "CMakeFiles/npral_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/npral_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/npral_support.dir/Random.cpp.o"
  "CMakeFiles/npral_support.dir/Random.cpp.o.d"
  "CMakeFiles/npral_support.dir/StringUtils.cpp.o"
  "CMakeFiles/npral_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/npral_support.dir/TableFormatter.cpp.o"
  "CMakeFiles/npral_support.dir/TableFormatter.cpp.o.d"
  "libnpral_support.a"
  "libnpral_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
