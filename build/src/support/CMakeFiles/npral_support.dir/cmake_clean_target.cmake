file(REMOVE_RECURSE
  "libnpral_support.a"
)
