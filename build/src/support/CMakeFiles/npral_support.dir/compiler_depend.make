# Empty compiler generated dependencies file for npral_support.
# This may be replaced when dependencies are built.
