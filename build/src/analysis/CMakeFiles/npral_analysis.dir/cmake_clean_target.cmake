file(REMOVE_RECURSE
  "libnpral_analysis.a"
)
