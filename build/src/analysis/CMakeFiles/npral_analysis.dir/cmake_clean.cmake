file(REMOVE_RECURSE
  "CMakeFiles/npral_analysis.dir/InterferenceGraph.cpp.o"
  "CMakeFiles/npral_analysis.dir/InterferenceGraph.cpp.o.d"
  "CMakeFiles/npral_analysis.dir/LiveRangeRenaming.cpp.o"
  "CMakeFiles/npral_analysis.dir/LiveRangeRenaming.cpp.o.d"
  "CMakeFiles/npral_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/npral_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/npral_analysis.dir/NSR.cpp.o"
  "CMakeFiles/npral_analysis.dir/NSR.cpp.o.d"
  "libnpral_analysis.a"
  "libnpral_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
