
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/InterferenceGraph.cpp" "src/analysis/CMakeFiles/npral_analysis.dir/InterferenceGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/npral_analysis.dir/InterferenceGraph.cpp.o.d"
  "/root/repo/src/analysis/LiveRangeRenaming.cpp" "src/analysis/CMakeFiles/npral_analysis.dir/LiveRangeRenaming.cpp.o" "gcc" "src/analysis/CMakeFiles/npral_analysis.dir/LiveRangeRenaming.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/npral_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/npral_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/NSR.cpp" "src/analysis/CMakeFiles/npral_analysis.dir/NSR.cpp.o" "gcc" "src/analysis/CMakeFiles/npral_analysis.dir/NSR.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/npral_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npral_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
