# Empty compiler generated dependencies file for npral_analysis.
# This may be replaced when dependencies are built.
