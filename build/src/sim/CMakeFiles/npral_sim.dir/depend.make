# Empty dependencies file for npral_sim.
# This may be replaced when dependencies are built.
