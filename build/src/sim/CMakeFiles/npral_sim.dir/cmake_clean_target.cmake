file(REMOVE_RECURSE
  "libnpral_sim.a"
)
