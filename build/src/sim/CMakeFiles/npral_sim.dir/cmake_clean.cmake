file(REMOVE_RECURSE
  "CMakeFiles/npral_sim.dir/Simulator.cpp.o"
  "CMakeFiles/npral_sim.dir/Simulator.cpp.o.d"
  "libnpral_sim.a"
  "libnpral_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
