file(REMOVE_RECURSE
  "CMakeFiles/npral_workloads.dir/Harness.cpp.o"
  "CMakeFiles/npral_workloads.dir/Harness.cpp.o.d"
  "CMakeFiles/npral_workloads.dir/KernelsChecksum.cpp.o"
  "CMakeFiles/npral_workloads.dir/KernelsChecksum.cpp.o.d"
  "CMakeFiles/npral_workloads.dir/KernelsCrypto.cpp.o"
  "CMakeFiles/npral_workloads.dir/KernelsCrypto.cpp.o.d"
  "CMakeFiles/npral_workloads.dir/KernelsForward.cpp.o"
  "CMakeFiles/npral_workloads.dir/KernelsForward.cpp.o.d"
  "CMakeFiles/npral_workloads.dir/KernelsSched.cpp.o"
  "CMakeFiles/npral_workloads.dir/KernelsSched.cpp.o.d"
  "CMakeFiles/npral_workloads.dir/ProgramGenerator.cpp.o"
  "CMakeFiles/npral_workloads.dir/ProgramGenerator.cpp.o.d"
  "CMakeFiles/npral_workloads.dir/Workload.cpp.o"
  "CMakeFiles/npral_workloads.dir/Workload.cpp.o.d"
  "libnpral_workloads.a"
  "libnpral_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
