file(REMOVE_RECURSE
  "libnpral_workloads.a"
)
