# Empty compiler generated dependencies file for npral_workloads.
# This may be replaced when dependencies are built.
