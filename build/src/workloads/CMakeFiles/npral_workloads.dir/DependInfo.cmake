
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Harness.cpp" "src/workloads/CMakeFiles/npral_workloads.dir/Harness.cpp.o" "gcc" "src/workloads/CMakeFiles/npral_workloads.dir/Harness.cpp.o.d"
  "/root/repo/src/workloads/KernelsChecksum.cpp" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsChecksum.cpp.o" "gcc" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsChecksum.cpp.o.d"
  "/root/repo/src/workloads/KernelsCrypto.cpp" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsCrypto.cpp.o" "gcc" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsCrypto.cpp.o.d"
  "/root/repo/src/workloads/KernelsForward.cpp" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsForward.cpp.o" "gcc" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsForward.cpp.o.d"
  "/root/repo/src/workloads/KernelsSched.cpp" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsSched.cpp.o" "gcc" "src/workloads/CMakeFiles/npral_workloads.dir/KernelsSched.cpp.o.d"
  "/root/repo/src/workloads/ProgramGenerator.cpp" "src/workloads/CMakeFiles/npral_workloads.dir/ProgramGenerator.cpp.o" "gcc" "src/workloads/CMakeFiles/npral_workloads.dir/ProgramGenerator.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/npral_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/npral_workloads.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmparse/CMakeFiles/npral_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/npral_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/npral_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npral_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/npral_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/npral_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npral_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
