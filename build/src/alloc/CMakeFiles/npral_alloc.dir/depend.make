# Empty dependencies file for npral_alloc.
# This may be replaced when dependencies are built.
