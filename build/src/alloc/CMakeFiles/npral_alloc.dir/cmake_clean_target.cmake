file(REMOVE_RECURSE
  "libnpral_alloc.a"
)
