
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/AllocationVerifier.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/AllocationVerifier.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/AllocationVerifier.cpp.o.d"
  "/root/repo/src/alloc/BoundsEstimator.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/BoundsEstimator.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/BoundsEstimator.cpp.o.d"
  "/root/repo/src/alloc/ColoringUtils.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/ColoringUtils.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/ColoringUtils.cpp.o.d"
  "/root/repo/src/alloc/FragmentAllocator.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/FragmentAllocator.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/FragmentAllocator.cpp.o.d"
  "/root/repo/src/alloc/InterAllocator.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/InterAllocator.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/InterAllocator.cpp.o.d"
  "/root/repo/src/alloc/IntraAllocator.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/IntraAllocator.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/IntraAllocator.cpp.o.d"
  "/root/repo/src/alloc/MoveElimination.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/MoveElimination.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/MoveElimination.cpp.o.d"
  "/root/repo/src/alloc/ParallelCopy.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/ParallelCopy.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/ParallelCopy.cpp.o.d"
  "/root/repo/src/alloc/SplitTransforms.cpp" "src/alloc/CMakeFiles/npral_alloc.dir/SplitTransforms.cpp.o" "gcc" "src/alloc/CMakeFiles/npral_alloc.dir/SplitTransforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/npral_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/npral_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npral_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
