file(REMOVE_RECURSE
  "CMakeFiles/npral_alloc.dir/AllocationVerifier.cpp.o"
  "CMakeFiles/npral_alloc.dir/AllocationVerifier.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/BoundsEstimator.cpp.o"
  "CMakeFiles/npral_alloc.dir/BoundsEstimator.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/ColoringUtils.cpp.o"
  "CMakeFiles/npral_alloc.dir/ColoringUtils.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/FragmentAllocator.cpp.o"
  "CMakeFiles/npral_alloc.dir/FragmentAllocator.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/InterAllocator.cpp.o"
  "CMakeFiles/npral_alloc.dir/InterAllocator.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/IntraAllocator.cpp.o"
  "CMakeFiles/npral_alloc.dir/IntraAllocator.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/MoveElimination.cpp.o"
  "CMakeFiles/npral_alloc.dir/MoveElimination.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/ParallelCopy.cpp.o"
  "CMakeFiles/npral_alloc.dir/ParallelCopy.cpp.o.d"
  "CMakeFiles/npral_alloc.dir/SplitTransforms.cpp.o"
  "CMakeFiles/npral_alloc.dir/SplitTransforms.cpp.o.d"
  "libnpral_alloc.a"
  "libnpral_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
