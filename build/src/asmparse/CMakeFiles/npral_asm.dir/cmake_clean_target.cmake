file(REMOVE_RECURSE
  "libnpral_asm.a"
)
