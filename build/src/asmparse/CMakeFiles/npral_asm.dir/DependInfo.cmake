
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmparse/AsmParser.cpp" "src/asmparse/CMakeFiles/npral_asm.dir/AsmParser.cpp.o" "gcc" "src/asmparse/CMakeFiles/npral_asm.dir/AsmParser.cpp.o.d"
  "/root/repo/src/asmparse/FunctionExpansion.cpp" "src/asmparse/CMakeFiles/npral_asm.dir/FunctionExpansion.cpp.o" "gcc" "src/asmparse/CMakeFiles/npral_asm.dir/FunctionExpansion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/npral_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/npral_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
