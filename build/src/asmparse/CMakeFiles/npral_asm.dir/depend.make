# Empty dependencies file for npral_asm.
# This may be replaced when dependencies are built.
