file(REMOVE_RECURSE
  "CMakeFiles/npral_asm.dir/AsmParser.cpp.o"
  "CMakeFiles/npral_asm.dir/AsmParser.cpp.o.d"
  "CMakeFiles/npral_asm.dir/FunctionExpansion.cpp.o"
  "CMakeFiles/npral_asm.dir/FunctionExpansion.cpp.o.d"
  "libnpral_asm.a"
  "libnpral_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
