file(REMOVE_RECURSE
  "libnpral_baseline.a"
)
