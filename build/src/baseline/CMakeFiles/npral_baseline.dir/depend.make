# Empty dependencies file for npral_baseline.
# This may be replaced when dependencies are built.
