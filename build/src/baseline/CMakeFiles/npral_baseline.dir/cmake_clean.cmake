file(REMOVE_RECURSE
  "CMakeFiles/npral_baseline.dir/ChaitinAllocator.cpp.o"
  "CMakeFiles/npral_baseline.dir/ChaitinAllocator.cpp.o.d"
  "libnpral_baseline.a"
  "libnpral_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
