file(REMOVE_RECURSE
  "CMakeFiles/npral_ir.dir/CFGUtils.cpp.o"
  "CMakeFiles/npral_ir.dir/CFGUtils.cpp.o.d"
  "CMakeFiles/npral_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/npral_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/npral_ir.dir/IRVerifier.cpp.o"
  "CMakeFiles/npral_ir.dir/IRVerifier.cpp.o.d"
  "CMakeFiles/npral_ir.dir/Opcode.cpp.o"
  "CMakeFiles/npral_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/npral_ir.dir/Program.cpp.o"
  "CMakeFiles/npral_ir.dir/Program.cpp.o.d"
  "libnpral_ir.a"
  "libnpral_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npral_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
