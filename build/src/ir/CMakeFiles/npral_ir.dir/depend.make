# Empty dependencies file for npral_ir.
# This may be replaced when dependencies are built.
