file(REMOVE_RECURSE
  "libnpral_ir.a"
)
