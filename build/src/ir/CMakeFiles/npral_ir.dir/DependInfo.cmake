
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/CFGUtils.cpp" "src/ir/CMakeFiles/npral_ir.dir/CFGUtils.cpp.o" "gcc" "src/ir/CMakeFiles/npral_ir.dir/CFGUtils.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/ir/CMakeFiles/npral_ir.dir/IRPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/npral_ir.dir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/IRVerifier.cpp" "src/ir/CMakeFiles/npral_ir.dir/IRVerifier.cpp.o" "gcc" "src/ir/CMakeFiles/npral_ir.dir/IRVerifier.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/ir/CMakeFiles/npral_ir.dir/Opcode.cpp.o" "gcc" "src/ir/CMakeFiles/npral_ir.dir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/ir/CMakeFiles/npral_ir.dir/Program.cpp.o" "gcc" "src/ir/CMakeFiles/npral_ir.dir/Program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/npral_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
